// Package manifest is PapyrusKV's per-rank table-lifecycle log: the
// crash-atomic record of which SSTables are live, what the next SSID is,
// which WAL epoch the rank last opened, and which checkpoint it last
// committed — the "manifest discipline" of LSM stores like RocksDB.
//
// Before this package, Open/Restart/Recover re-derived the live table set
// by scanning the rank's directory, so any crash between "write merged
// output" and "delete compaction inputs" resurrected deleted and
// overwritten values on the next boot. The manifest closes that window:
// every lifecycle transition (flush retire, compaction install/delete,
// checkpoint restore) commits a VersionEdit to this log *before* the old
// files are unlinked, and recovery composes the database from the log
// alone. Files on the device that the log does not list are orphans — the
// remains of a crash mid-transition — and are quarantined, never adopted.
//
// The log is an append-only chain of CRC32C-framed edits under
// <rank-dir>/manifest/log, with the same damage taxonomy as the WAL: an
// incomplete frame at end of file is a torn tail (the expected remains of
// a crash mid-append) and is truncated silently; a complete frame that
// fails its checksum is mid-log corruption and surfaces as the typed
// ErrCorrupt. Every RotateEvery edits the log is compacted: the current
// version is written as a single snapshot frame to a temp file, fsynced,
// and atomically renamed over the log.
package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"papyruskv/internal/faults"
	"papyruskv/internal/nvm"
	"papyruskv/internal/stats"
)

// ErrCorrupt reports mid-log manifest corruption: a complete frame whose
// checksum or structure is wrong. A torn tail is not corruption — Open
// truncates it silently — so ErrCorrupt always means the rank's table
// lifecycle can no longer be reconstructed and its failure domain must be
// failed rather than guessed at.
var ErrCorrupt = errors.New("manifest: corrupt log")

// ErrClosed reports an edit against a closed or poisoned manifest.
var ErrClosed = errors.New("manifest: log closed")

// crcTable is the Castagnoli polynomial, matching the SSTable and WAL
// checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame layout, all little-endian:
//
//	crc32c  uint32  // over the payload
//	length  uint32  // payload bytes
//	payload:
//	  kind     uint8  // frameEdit/frameSnapshot (v1) or the V2 kinds
//	  nextSSID uint64 // 0 = unchanged (snapshot: absolute)
//	  walEpoch uint32 // 0 = unchanged (snapshot: absolute)
//	  ckptLen  uint32 // checkpoint-marker path bytes
//	  nAdd     uint32 // tables added (snapshot: the full live set)
//	  nDel     uint32 // SSIDs deleted (snapshot: always 0)
//	  ckpt     [ckptLen]byte
//	  adds     [nAdd]TableMeta
//	  dels     [nDel]uint64
//
// V2 frames carry one extra uint32 per TableMeta — the table's LSM level —
// appended to the fixed prefix. Writers always emit V2; readers accept both,
// defaulting legacy tables to level 0 (the overlap-allowed level, which is
// exactly what every pre-leveled table was).
const (
	frameHeader  = 8
	payloadFixed = 1 + 8 + 4 + 4 + 4 + 4

	frameEdit     = 1
	frameSnapshot = 2
	frameEditV2   = 3
	frameSnapV2   = 4
)

// tableMetaFixed is the fixed-size prefix of one encoded v1 TableMeta:
// ssid u64, dataBytes u64, entries u64, dataCRC u32, indexCRC u32,
// bloomCRC u32, minLen u32, maxLen u32. V2 appends level u32.
const (
	tableMetaFixed   = 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4
	tableMetaFixedV2 = tableMetaFixed + 4
)

// TableMeta fingerprints one live SSTable: identity, placement, sizes, key
// bounds, and the CRC32C of each of its three files. Recovery validates the
// files on the device against it, so a torn or bit-flipped table surfaces as
// a typed error instead of silently serving wrong data.
type TableMeta struct {
	SSID      uint64
	Level     uint32 // LSM level: 0 overlap-allowed, >=1 disjoint sorted runs
	DataBytes int64
	Entries   uint64
	DataCRC   uint32
	IndexCRC  uint32
	BloomCRC  uint32
	MinKey    []byte
	MaxKey    []byte
}

// Edit is one atomic version transition. All fields of one Edit commit in a
// single frame, so a compaction's install+delete can never be observed half
// done. Zero-valued fields leave the corresponding state unchanged.
type Edit struct {
	// Add lists tables entering the live set.
	Add []TableMeta
	// Delete lists SSIDs leaving the live set.
	Delete []uint64
	// NextSSID, when non-zero, raises the persistent SSID allocator floor.
	// Adds raise it implicitly to SSID+1; an explicit value survives even
	// when every table above it is deleted — the fix for post-restart SSID
	// reuse.
	NextSSID uint64
	// WALEpoch, when non-zero, records the rank's current WAL epoch.
	WALEpoch uint32
	// Checkpoint, when non-empty, marks a committed checkpoint at this
	// PFS path.
	Checkpoint string
}

// Version is the composed state of the log: the live table set and the
// persistent allocator floor.
type Version struct {
	// Tables is the live set, ascending by SSID.
	Tables []TableMeta
	// NextSSID is the smallest SSID a fresh allocation may use.
	NextSSID uint64
	// WALEpoch is the last recorded WAL epoch.
	WALEpoch uint32
	// Checkpoint is the last recorded committed checkpoint path.
	Checkpoint string
}

// Has reports whether ssid is in the live set.
func (v Version) Has(ssid uint64) bool {
	for _, t := range v.Tables {
		if t.SSID == ssid {
			return true
		}
	}
	return false
}

// Config opens one rank's manifest.
type Config struct {
	// Device is the rank's NVM device; the log lives on it.
	Device *nvm.Device
	// Dir is the rank's database directory; the log goes under
	// Dir + "/manifest".
	Dir string
	// Rank is reported in injection sites so rules can target one rank's
	// manifest on a shared device.
	Rank int
	// Inj arms ManifestTornAppend and ManifestRotateFail; nil disarms.
	Inj *faults.Injector
	// Stats receives the log's counters; nil allocates a private set.
	Stats *stats.Manifest
	// RotateEvery bounds the edits appended between snapshot rotations;
	// 0 means the default of 64.
	RotateEvery int
}

// LogName returns the device-relative manifest log path for a database
// directory.
func LogName(dir string) string { return dir + "/manifest/log" }

func newName(dir string) string { return dir + "/manifest/log.new" }

// Manifest is one rank's open manifest log. Methods are safe for concurrent
// use; core serializes lifecycle transitions anyway, but Recover and a
// late-running flush may race Close.
type Manifest struct {
	dev    *nvm.Device
	dir    string
	rank   int
	inj    *faults.Injector
	st     *stats.Manifest
	rotate int

	mu        sync.Mutex
	tables    map[uint64]TableMeta
	nextSSID  uint64
	walEpoch  uint32
	ckpt      string
	app       *nvm.Appender
	edits     int  // edits appended since the last snapshot
	fresh     bool // the log had no frames at Open (brand-new database)
	poisoned  bool // a torn append fired: the rank is dead past this point
	closed    bool
}

// Open replays the manifest log under cfg.Dir and returns the handle. A
// missing log is a fresh manifest (Fresh reports true); a torn tail is
// truncated to the last whole frame; mid-log corruption returns an error
// wrapping ErrCorrupt.
func Open(cfg Config) (*Manifest, error) {
	m := &Manifest{
		dev:      cfg.Device,
		dir:      cfg.Dir,
		rank:     cfg.Rank,
		inj:      cfg.Inj,
		st:       cfg.Stats,
		rotate:   cfg.RotateEvery,
		tables:   make(map[uint64]TableMeta),
		nextSSID: 1,
		fresh:    true,
	}
	if m.st == nil {
		m.st = &stats.Manifest{}
	}
	if m.rotate <= 0 {
		m.rotate = 64
	}
	// A log.new left behind is an interrupted rotation that never renamed:
	// the old log is authoritative, the temp file is garbage.
	if err := cfg.Device.Remove(newName(cfg.Dir)); err != nil {
		return nil, err
	}
	log := LogName(cfg.Dir)
	var clean int64 = -1
	if cfg.Device.Exists(log) {
		raw, err := cfg.Device.ReadFile(log)
		if err != nil {
			return nil, fmt.Errorf("manifest: read log: %w", err)
		}
		edits, n, err := decodeFrames(raw)
		if err != nil {
			return nil, err
		}
		if n < len(raw) {
			clean = int64(n)
			m.st.TailsTruncated.Add(1)
		}
		for _, e := range edits {
			m.applyLocked(e)
		}
		m.st.EditsRecovered.Add(uint64(len(edits)))
		// A non-empty log — even one holding only a torn first frame — means
		// a manifest-run database lived here; only a missing or zero-byte
		// log marks a brand-new (or legacy pre-manifest) directory.
		m.fresh = len(raw) == 0
		m.edits = len(edits)
	}
	app, err := cfg.Device.OpenAppend(log)
	if err != nil {
		return nil, fmt.Errorf("manifest: open log: %w", err)
	}
	if clean >= 0 {
		if err := app.Truncate(clean); err != nil {
			app.Close()
			return nil, fmt.Errorf("manifest: truncate torn tail: %w", err)
		}
	}
	m.app = app
	return m, nil
}

// Fresh reports whether the log held no frames at Open — a brand-new
// database directory, as opposed to one whose manifest merely lists no live
// tables. Core uses it to decide whether pre-manifest SSTables found on the
// device are a legacy image to adopt or orphans to quarantine.
func (m *Manifest) Fresh() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fresh
}

// Version returns the composed state.
func (m *Manifest) Version() Version {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versionLocked()
}

func (m *Manifest) versionLocked() Version {
	v := Version{NextSSID: m.nextSSID, WALEpoch: m.walEpoch, Checkpoint: m.ckpt}
	for _, t := range m.tables {
		v.Tables = append(v.Tables, t)
	}
	sort.Slice(v.Tables, func(i, j int) bool { return v.Tables[i].SSID < v.Tables[j].SSID })
	return v
}

// applyLocked folds one edit into the in-memory state.
func (m *Manifest) applyLocked(e Edit) {
	for _, t := range e.Add {
		m.tables[t.SSID] = t
		if t.SSID >= m.nextSSID {
			m.nextSSID = t.SSID + 1
		}
	}
	for _, id := range e.Delete {
		delete(m.tables, id)
	}
	if e.NextSSID > m.nextSSID {
		m.nextSSID = e.NextSSID
	}
	if e.WALEpoch != 0 {
		m.walEpoch = e.WALEpoch
	}
	if e.Checkpoint != "" {
		m.ckpt = e.Checkpoint
	}
}

func (m *Manifest) site() faults.Site {
	return faults.Site{Rank: m.rank, Tag: faults.AnyTag, Where: LogName(m.dir)}
}

// Apply appends e as one frame, fsyncs it, and folds it into the composed
// version. The edit is durable when Apply returns nil; on error nothing of
// it may be assumed durable and the caller must treat the transition as not
// having happened (the input files it was about to unlink must stay).
//
// The ManifestTornAppend injection point fires here: a torn append leaves a
// prefix of the frame on the device and returns an error — modelling a
// crash at that instruction, after which the rank must not proceed.
func (m *Manifest) Apply(e Edit) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.poisoned {
		return ErrClosed
	}
	frame := appendFrame(nil, frameEditV2, e)
	if m.inj != nil {
		if dec := m.inj.Eval(faults.ManifestTornAppend, m.site()); dec.Fire {
			m.poisoned = true
			if n := dec.TearAt(len(frame)); n > 0 {
				_ = m.app.Append(frame[:n])
				_ = m.app.Sync()
			}
			return fmt.Errorf("manifest: append: %w: torn append", faults.ErrInjected)
		}
	}
	if err := m.app.Append(frame); err != nil {
		return fmt.Errorf("manifest: append: %w", err)
	}
	if err := m.app.Sync(); err != nil {
		return fmt.Errorf("manifest: sync: %w", err)
	}
	m.applyLocked(e)
	m.fresh = false
	m.edits++
	m.st.Edits.Add(1)
	if m.edits >= m.rotate {
		// Best-effort: a failed rotation leaves the old log authoritative
		// and is counted, not fatal — the edit above is already durable.
		_ = m.rotateLocked()
	}
	return nil
}

// Rotate compacts the log now: the composed version is written as a single
// snapshot frame to a temp file, fsynced, verified by read-back, and
// atomically renamed over the log. Exposed for tests; Apply rotates
// automatically every RotateEvery edits.
func (m *Manifest) Rotate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.poisoned {
		return ErrClosed
	}
	return m.rotateLocked()
}

func (m *Manifest) rotateLocked() error {
	fail := func(err error) error {
		m.st.RotateErrors.Add(1)
		return err
	}
	if m.inj != nil && m.inj.Eval(faults.ManifestRotateFail, m.site()).Fire {
		return fail(fmt.Errorf("manifest: rotate: %w: rotation aborted", faults.ErrInjected))
	}
	snap := Edit{NextSSID: m.nextSSID, WALEpoch: m.walEpoch, Checkpoint: m.ckpt}
	snap.Add = m.versionLocked().Tables
	frame := appendFrame(nil, frameSnapV2, snap)

	tmp := newName(m.dir)
	if err := m.dev.Remove(tmp); err != nil {
		return fail(err)
	}
	a, err := m.dev.OpenAppend(tmp)
	if err != nil {
		return fail(err)
	}
	if err := a.Append(frame); err == nil {
		err = a.Sync()
	}
	if cerr := a.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(fmt.Errorf("manifest: rotate: write snapshot: %w", err))
	}
	// Read-back verification before the rename: a torn device write would
	// otherwise replace a complete log with a truncated snapshot.
	raw, err := m.dev.ReadFile(tmp)
	if err != nil {
		return fail(fmt.Errorf("manifest: rotate: verify snapshot: %w", err))
	}
	if _, n, err := decodeFrames(raw); err != nil || n != len(raw) || n != len(frame) {
		return fail(fmt.Errorf("manifest: rotate: snapshot fails verification (wrote %d, readable %d)", len(frame), n))
	}
	// Commit: close the live appender, rename the snapshot over the log
	// (fsyncing the parent directory), and reopen.
	if err := m.app.Close(); err != nil {
		return fail(fmt.Errorf("manifest: rotate: %w", err))
	}
	renameErr := m.dev.Rename(tmp, LogName(m.dir))
	app, openErr := m.dev.OpenAppend(LogName(m.dir))
	if openErr != nil {
		m.closed = true
		return fail(fmt.Errorf("manifest: rotate: reopen log: %w", openErr))
	}
	m.app = app
	if renameErr != nil {
		return fail(fmt.Errorf("manifest: rotate: %w", renameErr))
	}
	m.edits = 1 // the snapshot frame itself
	m.st.Rotations.Add(1)
	return nil
}

// Compose parses raw as a manifest log and returns the composed version plus
// the clean-prefix length, without opening a handle or touching a device.
// The damage taxonomy matches Open: a torn tail composes the frames before it
// and reports clean < len(raw) with a nil error; mid-log corruption returns
// an error wrapping ErrCorrupt. Offline tooling (pkvadmin scrub) and the
// online scrubber's manifest read-back both verify through it.
func Compose(raw []byte) (Version, int, error) {
	edits, clean, err := decodeFrames(raw)
	if err != nil {
		return Version{}, clean, err
	}
	m := &Manifest{tables: make(map[uint64]TableMeta), nextSSID: 1}
	for _, e := range edits {
		m.applyLocked(e)
	}
	return m.versionLocked(), clean, nil
}

// Close releases the log handle. Every committed edit is already fsynced,
// so there is nothing to flush; a poisoned (torn) log is released the same
// way.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if err := m.app.Close(); err != nil {
		return fmt.Errorf("manifest: close: %w", err)
	}
	return nil
}

// metaFixedOf returns the fixed TableMeta prefix size for a frame kind.
func metaFixedOf(kind byte) int {
	if kind == frameEditV2 || kind == frameSnapV2 {
		return tableMetaFixedV2
	}
	return tableMetaFixed
}

// appendFrame appends one framed edit of the given kind to dst.
func appendFrame(dst []byte, kind byte, e Edit) []byte {
	metaFixed := metaFixedOf(kind)
	plen := payloadFixed + len(e.Checkpoint)
	for _, t := range e.Add {
		plen += metaFixed + len(t.MinKey) + len(t.MaxKey)
	}
	plen += 8 * len(e.Delete)

	off := len(dst)
	dst = append(dst, make([]byte, frameHeader+plen)...)
	p := dst[off+frameHeader:]
	p[0] = kind
	binary.LittleEndian.PutUint64(p[1:], e.NextSSID)
	binary.LittleEndian.PutUint32(p[9:], e.WALEpoch)
	binary.LittleEndian.PutUint32(p[13:], uint32(len(e.Checkpoint)))
	binary.LittleEndian.PutUint32(p[17:], uint32(len(e.Add)))
	binary.LittleEndian.PutUint32(p[21:], uint32(len(e.Delete)))
	w := payloadFixed
	w += copy(p[w:], e.Checkpoint)
	for _, t := range e.Add {
		binary.LittleEndian.PutUint64(p[w:], t.SSID)
		binary.LittleEndian.PutUint64(p[w+8:], uint64(t.DataBytes))
		binary.LittleEndian.PutUint64(p[w+16:], t.Entries)
		binary.LittleEndian.PutUint32(p[w+24:], t.DataCRC)
		binary.LittleEndian.PutUint32(p[w+28:], t.IndexCRC)
		binary.LittleEndian.PutUint32(p[w+32:], t.BloomCRC)
		binary.LittleEndian.PutUint32(p[w+36:], uint32(len(t.MinKey)))
		binary.LittleEndian.PutUint32(p[w+40:], uint32(len(t.MaxKey)))
		if metaFixed == tableMetaFixedV2 {
			binary.LittleEndian.PutUint32(p[w+44:], t.Level)
		}
		w += metaFixed
		w += copy(p[w:], t.MinKey)
		w += copy(p[w:], t.MaxKey)
	}
	for _, id := range e.Delete {
		binary.LittleEndian.PutUint64(p[w:], id)
		w += 8
	}
	binary.LittleEndian.PutUint32(dst[off:], crc32.Checksum(p, crcTable))
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(plen))
	return dst
}

// frameRec is one decoded frame: its edit and whether it was a snapshot.
type frameRec struct {
	edit Edit
	snap bool
}

// decodePayload parses one frame payload.
func decodePayload(p []byte) (frameRec, error) {
	var fr frameRec
	if len(p) < payloadFixed {
		return fr, fmt.Errorf("%w: payload of %d bytes", ErrCorrupt, len(p))
	}
	switch p[0] {
	case frameEdit, frameEditV2:
	case frameSnapshot, frameSnapV2:
		fr.snap = true
	default:
		return fr, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, p[0])
	}
	metaFixed := uint64(metaFixedOf(p[0]))
	e := &fr.edit
	e.NextSSID = binary.LittleEndian.Uint64(p[1:])
	e.WALEpoch = binary.LittleEndian.Uint32(p[9:])
	ckptLen := binary.LittleEndian.Uint32(p[13:])
	nAdd := binary.LittleEndian.Uint32(p[17:])
	nDel := binary.LittleEndian.Uint32(p[21:])
	w := uint64(payloadFixed)
	if w+uint64(ckptLen) > uint64(len(p)) {
		return fr, fmt.Errorf("%w: checkpoint marker overruns payload", ErrCorrupt)
	}
	e.Checkpoint = string(p[w : w+uint64(ckptLen)])
	w += uint64(ckptLen)
	for i := uint32(0); i < nAdd; i++ {
		if w+metaFixed > uint64(len(p)) {
			return fr, fmt.Errorf("%w: table meta overruns payload", ErrCorrupt)
		}
		var t TableMeta
		t.SSID = binary.LittleEndian.Uint64(p[w:])
		t.DataBytes = int64(binary.LittleEndian.Uint64(p[w+8:]))
		t.Entries = binary.LittleEndian.Uint64(p[w+16:])
		t.DataCRC = binary.LittleEndian.Uint32(p[w+24:])
		t.IndexCRC = binary.LittleEndian.Uint32(p[w+28:])
		t.BloomCRC = binary.LittleEndian.Uint32(p[w+32:])
		minLen := binary.LittleEndian.Uint32(p[w+36:])
		maxLen := binary.LittleEndian.Uint32(p[w+40:])
		if metaFixed == tableMetaFixedV2 {
			t.Level = binary.LittleEndian.Uint32(p[w+44:])
		}
		w += metaFixed
		if w+uint64(minLen)+uint64(maxLen) > uint64(len(p)) {
			return fr, fmt.Errorf("%w: table key bounds overrun payload", ErrCorrupt)
		}
		t.MinKey = append([]byte(nil), p[w:w+uint64(minLen)]...)
		w += uint64(minLen)
		t.MaxKey = append([]byte(nil), p[w:w+uint64(maxLen)]...)
		w += uint64(maxLen)
		e.Add = append(e.Add, t)
	}
	for i := uint32(0); i < nDel; i++ {
		if w+8 > uint64(len(p)) {
			return fr, fmt.Errorf("%w: delete list overruns payload", ErrCorrupt)
		}
		e.Delete = append(e.Delete, binary.LittleEndian.Uint64(p[w:]))
		w += 8
	}
	if w != uint64(len(p)) {
		return fr, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, uint64(len(p))-w)
	}
	return fr, nil
}

// decodeFrames parses data as a sequence of frames, returning the edits in
// order (a snapshot frame resets the state, expressed by a leading delete of
// everything — see the caller), the clean-prefix length, and an error
// wrapping ErrCorrupt for a complete frame that fails validation. An
// incomplete frame at the end is a torn tail: the frames before it are
// returned with clean < len(data) and a nil error.
func decodeFrames(data []byte) ([]Edit, int, error) {
	var out []Edit
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return out, off, nil // torn header
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		plen := binary.LittleEndian.Uint32(data[off+4:])
		if uint64(plen) > uint64(len(data)-off-frameHeader) {
			return out, off, nil // torn payload
		}
		p := data[off+frameHeader : off+frameHeader+int(plen)]
		if crc32.Checksum(p, crcTable) != crc {
			return out, off, fmt.Errorf("%w: bad checksum at offset %d", ErrCorrupt, off)
		}
		fr, err := decodePayload(p)
		if err != nil {
			return out, off, fmt.Errorf("%w at offset %d", err, off)
		}
		if fr.snap {
			// A snapshot replaces everything before it.
			out = out[:0]
		}
		out = append(out, fr.edit)
		off += frameHeader + int(plen)
	}
	return out, off, nil
}
