package manifest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

// fuzzSeedFrames builds the seed logs the committed corpus under
// testdata/fuzz/FuzzManifestDecode mirrors: whole logs of V1 and V2 frames,
// a snapshot mid-log, torn tails at both boundary kinds, a flipped
// checksum, an unknown frame kind, and a payload whose internal lengths
// overrun it behind a valid checksum.
func fuzzSeedFrames() [][]byte {
	t1 := TableMeta{SSID: 1, Level: 0, DataBytes: 64, Entries: 3,
		DataCRC: 0x11111111, IndexCRC: 0x22222222, BloomCRC: 0x33333333,
		MinKey: []byte("aaa"), MaxKey: []byte("mmm")}
	t2 := TableMeta{SSID: 2, Level: 1, DataBytes: 128, Entries: 7,
		DataCRC: 0x44444444, IndexCRC: 0x55555555, BloomCRC: 0x66666666,
		MinKey: []byte("nnn"), MaxKey: []byte("zzz")}

	one := appendFrame(nil, frameEditV2, Edit{Add: []TableMeta{t1}, WALEpoch: 1})

	multi := appendFrame(nil, frameEditV2, Edit{Add: []TableMeta{t1}, WALEpoch: 1})
	multi = appendFrame(multi, frameEditV2, Edit{Add: []TableMeta{t2}, Checkpoint: "ckpt/g1"})
	multi = appendFrame(multi, frameSnapV2, Edit{Add: []TableMeta{t2}, NextSSID: 3, WALEpoch: 2})
	multi = appendFrame(multi, frameEditV2, Edit{Delete: []uint64{2}, NextSSID: 5})

	legacy := appendFrame(nil, frameEdit, Edit{Add: []TableMeta{t1}})
	legacy = appendFrame(legacy, frameSnapshot, Edit{Add: []TableMeta{t1}, NextSSID: 2})

	badCRC := append([]byte(nil), one...)
	badCRC[0] ^= 0xff

	badKind := append([]byte(nil), one...)
	badKind[frameHeader] = 99 // payload[0] is the frame kind; CRC now stale too

	// A frame whose header says more adds than the payload holds, behind a
	// recomputed-valid checksum: decodePayload's overrun checks must fire.
	overrun := appendFrame(nil, frameEditV2, Edit{Add: []TableMeta{t1}})
	overrun[frameHeader+17] = 0xff // nAdd
	reseal(overrun)

	return [][]byte{
		{},                     // empty log
		one,                    // single edit
		multi,                  // edits + snapshot + post-snapshot edit
		legacy,                 // V1 frames
		multi[:len(multi)-5],   // torn payload
		multi[:3],              // torn header
		badCRC,                 // flipped checksum
		badKind,                // unknown kind (fails the CRC first)
		overrun,                // lengths overrun a checksum-valid payload
	}
}

// reseal recomputes the first frame's checksum so structural damage inside
// the payload is reachable past the CRC gate.
func reseal(frame []byte) {
	plen := binary.LittleEndian.Uint32(frame[4:])
	p := frame[frameHeader : frameHeader+int(plen)]
	binary.LittleEndian.PutUint32(frame, crc32.Checksum(p, crcTable))
}

// FuzzManifestDecode throws arbitrary bytes at the manifest decoder and
// checks the contract Open's replay — and the scrubber's read-back — depend
// on: any input either composes cleanly, truncates as a torn tail, or
// reports typed ErrCorrupt; never a panic, never an edit the encoder could
// not have written. Mirrors FuzzWALDecode; byte-identity is checked against
// a V2 re-encoding (V1 frames decode to the same edits they re-encode to,
// just in the newer framing).
func FuzzManifestDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		in := append([]byte(nil), data...)
		edits, clean, err := decodeFrames(in)
		if clean < 0 || clean > len(in) {
			t.Fatalf("clean = %d out of range [0, %d]", clean, len(in))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error %v is not typed ErrCorrupt", err)
		}
		if !bytes.Equal(in, data) {
			t.Fatal("decodeFrames mutated its input")
		}
		// Compose must agree with decodeFrames on the damage taxonomy.
		if _, cclean, cerr := Compose(in); cclean != clean || (cerr == nil) != (err == nil) {
			t.Fatalf("Compose (clean %d, err %v) disagrees with decodeFrames (clean %d, err %v)",
				cclean, cerr, clean, err)
		}
		// Round-trip: every edit the decoder vouches for must re-encode and
		// re-decode to itself — the decoder cannot invent structure the
		// encoder would not write.
		var re []byte
		for _, e := range edits {
			re = appendFrame(re, frameEditV2, e)
		}
		edits2, clean2, err2 := decodeFrames(re)
		if err2 != nil || clean2 != len(re) {
			t.Fatalf("re-encoded edits fail to decode: clean %d/%d, err %v", clean2, len(re), err2)
		}
		if len(edits) != len(edits2) {
			t.Fatalf("round trip changed edit count %d -> %d", len(edits), len(edits2))
		}
		for i := range edits {
			if !reflect.DeepEqual(edits[i], edits2[i]) {
				t.Fatalf("edit %d changed across round trip:\n  %#v\n  %#v", i, edits[i], edits2[i])
			}
		}
	})
}
