package manifest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"papyruskv/internal/faults"
	"papyruskv/internal/nvm"
)

func newDevice(t *testing.T) *nvm.Device {
	t.Helper()
	dev, err := nvm.Open(t.TempDir(), nvm.PerfModel{})
	if err != nil {
		t.Fatalf("open device: %v", err)
	}
	return dev
}

func open(t *testing.T, cfg Config) *Manifest {
	t.Helper()
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("manifest open: %v", err)
	}
	return m
}

func apply(t *testing.T, m *Manifest, e Edit) {
	t.Helper()
	if err := m.Apply(e); err != nil {
		t.Fatalf("apply %+v: %v", e, err)
	}
}

func meta(ssid uint64) TableMeta {
	return TableMeta{SSID: ssid, DataBytes: int64(100 * ssid), Entries: ssid,
		MinKey: []byte("a"), MaxKey: []byte("z"), DataCRC: 1, IndexCRC: 2, BloomCRC: 3}
}

func TestManifestRoundTrip(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	if !m.Fresh() {
		t.Fatal("new log should be fresh")
	}
	apply(t, m, Edit{Add: []TableMeta{meta(1)}, WALEpoch: 3})
	apply(t, m, Edit{Add: []TableMeta{meta(2)}})
	apply(t, m, Edit{Add: []TableMeta{meta(3)}, Delete: []uint64{1, 2}})
	apply(t, m, Edit{Checkpoint: "snap/run1"})
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m = open(t, cfg)
	if m.Fresh() {
		t.Fatal("replayed log should not be fresh")
	}
	v := m.Version()
	if len(v.Tables) != 1 || v.Tables[0].SSID != 3 {
		t.Fatalf("live set = %+v, want just sst 3", v.Tables)
	}
	got := v.Tables[0]
	want := meta(3)
	if got.DataBytes != want.DataBytes || got.Entries != want.Entries ||
		got.DataCRC != want.DataCRC || got.IndexCRC != want.IndexCRC || got.BloomCRC != want.BloomCRC ||
		string(got.MinKey) != "a" || string(got.MaxKey) != "z" {
		t.Fatalf("table meta did not round-trip: %+v", got)
	}
	if v.NextSSID != 4 {
		t.Fatalf("NextSSID = %d, want 4", v.NextSSID)
	}
	if v.WALEpoch != 3 {
		t.Fatalf("WALEpoch = %d, want 3", v.WALEpoch)
	}
	if v.Checkpoint != "snap/run1" {
		t.Fatalf("Checkpoint = %q, want snap/run1", v.Checkpoint)
	}
	m.Close()
}

// TestManifestNextSSIDSurvivesDelete is the SSID-reuse regression test: the
// allocator floor must not regress when the highest table is deleted, or a
// restart would hand out an SSID whose name collides with stale checkpoint
// manifests and (dir, ssid) reader-cache keys. The old directory-scan
// derivation (max(listed)+1) had exactly this bug.
func TestManifestNextSSIDSurvivesDelete(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}})
	apply(t, m, Edit{Add: []TableMeta{meta(2)}})
	apply(t, m, Edit{Delete: []uint64{2}})
	m.Close()

	m = open(t, cfg)
	defer m.Close()
	v := m.Version()
	if len(v.Tables) != 1 || v.Tables[0].SSID != 1 {
		t.Fatalf("live set = %+v, want just sst 1", v.Tables)
	}
	if v.NextSSID != 3 {
		t.Fatalf("NextSSID = %d after deleting the highest table, want 3 (no reuse)", v.NextSSID)
	}
}

func TestManifestTornTailTruncated(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}})
	apply(t, m, Edit{Add: []TableMeta{meta(2)}})
	m.Close()

	// Tear the last frame mid-payload, as a crash mid-append would.
	raw, err := dev.ReadFile(LogName(cfg.Dir))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	if err := dev.WriteFile(LogName(cfg.Dir), raw[:len(raw)-5]); err != nil {
		t.Fatalf("rewrite log: %v", err)
	}

	m = open(t, cfg)
	v := m.Version()
	if len(v.Tables) != 1 || v.Tables[0].SSID != 1 {
		t.Fatalf("live set after torn tail = %+v, want just sst 1", v.Tables)
	}
	// The tail was truncated; appends continue cleanly from the last whole
	// frame.
	apply(t, m, Edit{Add: []TableMeta{meta(5)}})
	m.Close()
	m = open(t, cfg)
	defer m.Close()
	v = m.Version()
	if len(v.Tables) != 2 || v.Tables[1].SSID != 5 {
		t.Fatalf("live set after post-truncation append = %+v, want [1 5]", v.Tables)
	}
}

func TestManifestMidLogCorruption(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}})
	apply(t, m, Edit{Add: []TableMeta{meta(2)}})
	m.Close()

	raw, err := dev.ReadFile(LogName(cfg.Dir))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	raw[frameHeader+2] ^= 0xff // flip a byte inside the first frame's payload
	if err := dev.WriteFile(LogName(cfg.Dir), raw); err != nil {
		t.Fatalf("rewrite log: %v", err)
	}

	if _, err := Open(cfg); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestManifestRotation(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0", RotateEvery: 4}
	m := open(t, cfg)
	for i := uint64(1); i <= 10; i++ {
		e := Edit{Add: []TableMeta{meta(i)}}
		if i > 1 {
			e.Delete = []uint64{i - 1}
		}
		apply(t, m, e)
	}
	st := m.st
	if st.Rotations.Load() == 0 {
		t.Fatal("no rotation after 10 edits with RotateEvery=4")
	}
	m.Close()

	// The rotated log must be smaller than 10 raw edits and still compose
	// the same version.
	m = open(t, cfg)
	defer m.Close()
	v := m.Version()
	if len(v.Tables) != 1 || v.Tables[0].SSID != 10 || v.NextSSID != 11 {
		t.Fatalf("post-rotation version = %+v, want just sst 10, next 11", v)
	}
}

func TestManifestTornAppendInjection(t *testing.T) {
	dev := newDevice(t)
	inj := faults.New(42)
	inj.Enable(faults.Rule{Point: faults.ManifestTornAppend, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 2})
	cfg := Config{Device: dev, Dir: "db/r0", Inj: inj}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}})
	err := m.Apply(Edit{Add: []TableMeta{meta(2)}})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn append = %v, want ErrInjected", err)
	}
	// The manifest is poisoned — the rank is modelled as dead here.
	if err := m.Apply(Edit{Add: []TableMeta{meta(3)}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after tear = %v, want ErrClosed", err)
	}
	m.Close()

	// Reopen: the torn frame is a tail; only the committed edit survives.
	m = open(t, Config{Device: dev, Dir: "db/r0"})
	defer m.Close()
	v := m.Version()
	if len(v.Tables) != 1 || v.Tables[0].SSID != 1 {
		t.Fatalf("live set after torn append = %+v, want just sst 1", v.Tables)
	}
}

func TestManifestRotateFailInjection(t *testing.T) {
	dev := newDevice(t)
	inj := faults.New(7)
	inj.Enable(faults.Rule{Point: faults.ManifestRotateFail, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 1})
	cfg := Config{Device: dev, Dir: "db/r0", Inj: inj, RotateEvery: 2}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}})
	apply(t, m, Edit{Add: []TableMeta{meta(2)}}) // triggers the failing rotation
	if m.st.RotateErrors.Load() != 1 {
		t.Fatalf("RotateErrors = %d, want 1", m.st.RotateErrors.Load())
	}
	// The failure is non-fatal: the old log is authoritative and appends
	// continue.
	apply(t, m, Edit{Add: []TableMeta{meta(3)}})
	m.Close()

	m = open(t, Config{Device: dev, Dir: "db/r0"})
	defer m.Close()
	if v := m.Version(); len(v.Tables) != 3 {
		t.Fatalf("live set after failed rotation = %+v, want 3 tables", v.Tables)
	}
}

func TestManifestStaleRotateTempIgnored(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}})
	m.Close()
	// A crash between writing log.new and the rename leaves the temp file
	// behind; reopen must ignore (and clear) it.
	if err := dev.WriteFile(newName(cfg.Dir), []byte("half a snapshot")); err != nil {
		t.Fatalf("plant stale temp: %v", err)
	}
	m = open(t, cfg)
	defer m.Close()
	if v := m.Version(); len(v.Tables) != 1 || v.Tables[0].SSID != 1 {
		t.Fatalf("version with stale temp present = %+v, want just sst 1", v.Tables)
	}
	if dev.Exists(newName(cfg.Dir)) {
		t.Fatal("stale log.new survived reopen")
	}
}

func TestManifestDump(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	apply(t, m, Edit{Add: []TableMeta{meta(1)}, WALEpoch: 2})
	apply(t, m, Edit{Add: []TableMeta{meta(2)}, Delete: []uint64{1}, Checkpoint: "snap/x"})
	m.Close()

	raw, err := dev.ReadFile(LogName(cfg.Dir))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	var buf bytes.Buffer
	if err := DumpLog(raw, &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"add sst 000001", "delete sst 000001", "checkpoint \"snap/x\"",
		"wal-epoch 2", "version: 1 live tables, next-ssid 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
}

// TestManifestDumpLeveled pins the per-level listing `pkvadmin manifest
// dump` relies on: a leveled edit prints its target level on the add line,
// and the composed version groups the live set into per-level runs with L1+
// sorted by MinKey rather than SSID.
func TestManifestDumpLeveled(t *testing.T) {
	dev := newDevice(t)
	cfg := Config{Device: dev, Dir: "db/r0"}
	m := open(t, cfg)
	l1a := meta(4)
	l1a.Level = 1
	l1a.MinKey, l1a.MaxKey = []byte("m"), []byte("r")
	l1b := meta(7)
	l1b.Level = 1
	l1b.MinKey, l1b.MaxKey = []byte("a"), []byte("f")
	apply(t, m, Edit{Add: []TableMeta{meta(9), l1a, l1b}})
	m.Close()

	raw, err := dev.ReadFile(LogName(cfg.Dir))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	var buf bytes.Buffer
	if err := DumpLog(raw, &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"add sst 000009 L0", "add sst 000004 L1",
		"L0: 1 tables", "L1: 2 tables"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
	// Within L1 the listing is MinKey-sorted: sst 7 [a..f] before sst 4 [m..r].
	if i, j := strings.Index(out, "sst 000007: "), strings.Index(out, "sst 000004: "); i < 0 || j < 0 || i > j {
		t.Fatalf("L1 run not MinKey-sorted (sst7 at %d, sst4 at %d):\n%s", i, j, out)
	}
}
