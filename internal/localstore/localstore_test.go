package localstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"papyruskv/internal/nvm"
	"papyruskv/internal/rbtree"
)

func testStore(t *testing.T, opt Options) *Store {
	t.Helper()
	dev, err := nvm.Open(t.TempDir(), nvm.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dev, "store", opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := testStore(t, DefaultOptions())
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("deleted key found")
	}
	if _, ok, _ := s.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestCopiesInput(t *testing.T) {
	s := testStore(t, DefaultOptions())
	k := []byte("key")
	v := []byte("value")
	s.Put(k, v)
	copy(k, "xxx")
	copy(v, "zzzzz")
	got, ok, _ := s.Get([]byte("key"))
	if !ok || string(got) != "value" {
		t.Fatalf("store aliased caller buffers: %q %v", got, ok)
	}
}

func TestFlushAndReadFromTables(t *testing.T) {
	opt := Options{MemTableCapacity: 1 << 10}
	s := testStore(t, opt)
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), bytes.Repeat([]byte("v"), 32))
	}
	if s.TableCount() == 0 {
		t.Fatal("no table files after exceeding capacity")
	}
	for i := 0; i < 200; i += 17 {
		v, ok, err := s.Get([]byte(fmt.Sprintf("key%03d", i)))
		if err != nil || !ok || len(v) != 32 {
			t.Fatalf("Get key%03d = %v %v %v", i, len(v), ok, err)
		}
	}
}

func TestNewestWinsAcrossTables(t *testing.T) {
	opt := Options{MemTableCapacity: 1 << 10, CompactEvery: 0}
	s := testStore(t, opt)
	for round := 0; round < 4; round++ {
		for i := 0; i < 40; i++ {
			s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("round-%d", round)))
		}
		s.Flush()
	}
	for i := 0; i < 40; i++ {
		v, ok, _ := s.Get([]byte(fmt.Sprintf("k%02d", i)))
		if !ok || string(v) != "round-3" {
			t.Fatalf("k%02d = %q, %v", i, v, ok)
		}
	}
}

func TestCompaction(t *testing.T) {
	opt := Options{MemTableCapacity: 1 << 10, CompactEvery: 3}
	s := testStore(t, opt)
	for i := 0; i < 600; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i%50)), bytes.Repeat([]byte("x"), 32))
	}
	s.Flush()
	if s.TableCount() > 4 {
		t.Fatalf("compaction not bounding tables: %d", s.TableCount())
	}
	for i := 0; i < 50; i++ {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("k%03d", i))); !ok {
			t.Fatalf("k%03d lost in compaction", i)
		}
	}
}

func TestTombstoneShadowsTables(t *testing.T) {
	s := testStore(t, Options{MemTableCapacity: 1 << 20})
	s.Put([]byte("k"), []byte("v"))
	s.Flush()
	s.Delete([]byte("k"))
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("tombstone did not shadow table value")
	}
	s.Flush()
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("flushed tombstone did not shadow")
	}
}

func TestReopen(t *testing.T) {
	dev, err := nvm.Open(t.TempDir(), nvm.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Open(dev, "store", Options{MemTableCapacity: 1 << 20})
	s.Put([]byte("persist"), []byte("me"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dev, "store", Options{MemTableCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := s2.Get([]byte("persist"))
	if err != nil || !ok || string(v) != "me" {
		t.Fatalf("reopened Get = %q, %v, %v", v, ok, err)
	}
}

func TestClosedStore(t *testing.T) {
	s := testStore(t, DefaultOptions())
	s.Close()
	if err := s.Put([]byte("k"), nil); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if _, _, err := s.Get([]byte("k")); err == nil {
		t.Fatal("Get on closed store succeeded")
	}
}

func TestRandomizedMirror(t *testing.T) {
	s := testStore(t, Options{MemTableCapacity: 2 << 10, CompactEvery: 4})
	mirror := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(4) {
		case 0, 1, 2:
			v := fmt.Sprintf("v%d", i)
			s.Put([]byte(k), []byte(v))
			mirror[k] = v
		case 3:
			s.Delete([]byte(k))
			delete(mirror, k)
		}
	}
	for k, want := range mirror {
		v, ok, err := s.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", k, v, ok, err, want)
		}
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, inMirror := mirror[k]; !inMirror {
			if _, ok, _ := s.Get([]byte(k)); ok {
				t.Fatalf("deleted %s still present", k)
			}
		}
	}
}

func TestQuickTableCodec(t *testing.T) {
	f := func(m map[string][]byte) bool {
		tr := rbtree.New()
		for k, v := range m {
			tr.Put([]byte(k), entry{value: v})
		}
		recs, err := decodeTable(encodeTable(tr))
		if err != nil || len(recs) != len(m) {
			return false
		}
		for _, r := range recs {
			if !bytes.Equal(m[string(r.key)], r.e.value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
