// Package localstore is a single-node, embedded LSM key-value store — the
// stand-in for LevelDB underneath the MDHIM baseline of Figure 11.
//
// It is deliberately a *separate* storage engine from PapyrusKV's: MDHIM
// layers a communication/distribution layer over an unmodified local store,
// and the paper attributes PapyrusKV's win to MDHIM's "two discrete memory
// data structures ... additional duplicated memory allocation and data
// transfer between the two layers". To reproduce that cost structurally,
// this store owns its MemTable and table files, and copies every key and
// value it ingests (as LevelDB does), independent of whatever buffering the
// layer above already performed.
package localstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"papyruskv/internal/nvm"
	"papyruskv/internal/rbtree"
)

// Options configures a Store.
type Options struct {
	// MemTableCapacity is the flush threshold in bytes.
	MemTableCapacity int64
	// CompactEvery merges all table files after this many flushes;
	// 0 disables compaction.
	CompactEvery int
}

// DefaultOptions mirrors LevelDB-ish defaults scaled for simulation.
func DefaultOptions() Options {
	return Options{MemTableCapacity: 4 << 20, CompactEvery: 8}
}

type entry struct {
	value     []byte
	tombstone bool
}

// Store is a single-node LSM store rooted in one directory of a device.
type Store struct {
	dev *nvm.Device
	dir string
	opt Options

	mu      sync.Mutex
	mem     *rbtree.Tree
	memSize int64
	tables  []uint64 // ascending file numbers; newest last
	nextNum uint64
	flushes int
	closed  bool
}

// Open creates or reopens the store at dir.
func Open(dev *nvm.Device, dir string, opt Options) (*Store, error) {
	if opt.MemTableCapacity <= 0 {
		opt.MemTableCapacity = DefaultOptions().MemTableCapacity
	}
	s := &Store{dev: dev, dir: dir, opt: opt, mem: rbtree.New(), nextNum: 1}
	files, err := dev.List(dir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		var num uint64
		if _, err := fmt.Sscanf(f[len(dir)+1:], "tbl-%d.ldb", &num); err == nil {
			s.tables = append(s.tables, num)
			if num >= s.nextNum {
				s.nextNum = num + 1
			}
		}
	}
	return s, nil
}

func (s *Store) tableName(num uint64) string {
	return fmt.Sprintf("%s/tbl-%06d.ldb", s.dir, num)
}

// Put inserts or replaces key. Both slices are copied into the store's own
// memory — the duplicated allocation the MDHIM comparison measures.
func (s *Store) Put(key, value []byte) error {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	return s.insert(k, entry{value: v})
}

// Delete inserts a tombstone for key.
func (s *Store) Delete(key []byte) error {
	k := append([]byte(nil), key...)
	return s.insert(k, entry{tombstone: true})
}

func (s *Store) insert(key []byte, e entry) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("localstore: closed")
	}
	prev, replaced := s.mem.Put(key, e)
	s.memSize += int64(len(key) + len(e.value) + 32)
	if replaced {
		p := prev.(entry)
		s.memSize -= int64(len(key) + len(p.value) + 32)
	}
	if s.memSize < s.opt.MemTableCapacity {
		s.mu.Unlock()
		return nil
	}
	// Flush synchronously: LevelDB stalls writers when the MemTable
	// fills and the background thread is behind; a synchronous flush is
	// the simplest faithful-enough cost model for the comparison.
	return s.flushLocked()
}

// flushLocked writes the MemTable as a new table file. Caller holds s.mu;
// the lock is released on return.
func (s *Store) flushLocked() error {
	defer s.mu.Unlock()
	if s.mem.Len() == 0 {
		return nil
	}
	num := s.nextNum
	s.nextNum++
	data := encodeTable(s.mem)
	if err := s.dev.WriteFile(s.tableName(num), data); err != nil {
		return err
	}
	s.tables = append(s.tables, num)
	s.mem = rbtree.New()
	s.memSize = 0
	s.flushes++
	if s.opt.CompactEvery > 0 && s.flushes%s.opt.CompactEvery == 0 && len(s.tables) > 1 {
		return s.compactLocked()
	}
	return nil
}

// compactLocked merges every table file into one. Caller holds s.mu.
func (s *Store) compactLocked() error {
	merged := rbtree.New()
	for _, num := range s.tables { // oldest first; newer overwrite
		recs, err := s.readTable(num)
		if err != nil {
			return err
		}
		for _, r := range recs {
			merged.Put(r.key, r.e)
		}
	}
	num := s.nextNum
	s.nextNum++
	if err := s.dev.WriteFile(s.tableName(num), encodeTable(merged)); err != nil {
		return err
	}
	for _, old := range s.tables {
		if err := s.dev.Remove(s.tableName(old)); err != nil {
			return err
		}
	}
	s.tables = []uint64{num}
	return nil
}

// Get returns the newest value for key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("localstore: closed")
	}
	if v, ok := s.mem.Get(key); ok {
		e := v.(entry)
		s.mu.Unlock()
		if e.tombstone {
			return nil, false, nil
		}
		return append([]byte(nil), e.value...), true, nil
	}
	tables := append([]uint64(nil), s.tables...)
	s.mu.Unlock()

	for i := len(tables) - 1; i >= 0; i-- {
		recs, err := s.readTable(tables[i])
		if err != nil {
			return nil, false, err
		}
		if e, ok := searchRecords(recs, key); ok {
			if e.tombstone {
				return nil, false, nil
			}
			return append([]byte(nil), e.value...), true, nil
		}
	}
	return nil, false, nil
}

// Flush persists the MemTable.
func (s *Store) Flush() error {
	s.mu.Lock()
	return s.flushLocked()
}

// Close flushes and marks the store unusable.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// TableCount reports the number of on-device table files.
func (s *Store) TableCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables)
}

type record struct {
	key []byte
	e   entry
}

// encodeTable serialises a MemTable in sorted key order:
// count, then (klen, vlen, flags, key, value)*.
func encodeTable(t *rbtree.Tree) []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(t.Len()))
	buf.Write(u32[:])
	t.Ascend(func(key []byte, v any) bool {
		e := v.(entry)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
		buf.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.value)))
		buf.Write(u32[:])
		var flags byte
		if e.tombstone {
			flags = 1
		}
		buf.WriteByte(flags)
		buf.Write(key)
		buf.Write(e.value)
		return true
	})
	return buf.Bytes()
}

func (s *Store) readTable(num uint64) ([]record, error) {
	raw, err := s.dev.ReadFile(s.tableName(num))
	if err != nil {
		return nil, err
	}
	return decodeTable(raw)
}

func decodeTable(raw []byte) ([]record, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("localstore: short table")
	}
	count := binary.LittleEndian.Uint32(raw)
	raw = raw[4:]
	recs := make([]record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(raw) < 9 {
			return nil, fmt.Errorf("localstore: truncated record header")
		}
		klen := binary.LittleEndian.Uint32(raw)
		vlen := binary.LittleEndian.Uint32(raw[4:])
		flags := raw[8]
		raw = raw[9:]
		if uint64(len(raw)) < uint64(klen)+uint64(vlen) {
			return nil, fmt.Errorf("localstore: truncated record body")
		}
		recs = append(recs, record{
			key: raw[:klen:klen],
			e:   entry{value: raw[klen : klen+vlen : klen+vlen], tombstone: flags&1 != 0},
		})
		raw = raw[klen+vlen:]
	}
	return recs, nil
}

// searchRecords binary-searches a sorted record slice.
func searchRecords(recs []record, key []byte) (entry, bool) {
	lo, hi := 0, len(recs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch c := bytes.Compare(key, recs[mid].key); {
		case c < 0:
			hi = mid - 1
		case c > 0:
			lo = mid + 1
		default:
			return recs[mid].e, true
		}
	}
	return entry{}, false
}
