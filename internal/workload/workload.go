// Package workload generates the microbenchmark workloads of §5: uniformly
// distributed random keys of letters (a-Z) and digits (0-9), values of a
// configurable size, and the read/update mixes of the workload application
// (50/50, 95/5, 100/0).
package workload

import (
	"fmt"
	"math/rand"
)

// alphabet matches the paper: random strings of letters and digits.
const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// KeyGen produces deterministic pseudo-random keys. Two KeyGens with equal
// seed, length, and count produce the same sequence, which the read phase
// of a workload relies on to re-request initialization-phase keys.
type KeyGen struct {
	rng    *rand.Rand
	keyLen int
}

// NewKeyGen creates a key generator for keys of keyLen bytes.
func NewKeyGen(seed int64, keyLen int) *KeyGen {
	return &KeyGen{rng: rand.New(rand.NewSource(seed)), keyLen: keyLen}
}

// Next returns the next random key.
func (g *KeyGen) Next() []byte {
	k := make([]byte, g.keyLen)
	for i := range k {
		k[i] = alphabet[g.rng.Intn(len(alphabet))]
	}
	return k
}

// Keys returns n keys from a fresh generator with the given seed: the
// canonical per-rank key set (seed = rank) of the paper's microbenchmarks.
func Keys(seed int64, keyLen, n int) [][]byte {
	g := NewKeyGen(seed, keyLen)
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Value builds a deterministic value of size bytes tagged with its key index
// so correctness checks can verify retrieved values.
func Value(size int, idx int) []byte {
	v := make([]byte, size)
	tag := fmt.Sprintf("val-%d-", idx)
	copy(v, tag)
	for i := len(tag); i < size; i++ {
		v[i] = alphabet[(idx+i)%len(alphabet)]
	}
	return v
}

// Op is one read/update-phase operation.
type Op struct {
	// Read is true for a get, false for a put (update).
	Read bool
	// KeyIdx selects which initialization-phase key to target.
	KeyIdx int
}

// Mix generates n operations with the given read percentage (0-100) over a
// key space of nkeys, deterministic in seed. readPct=95 models the paper's
// 95/5 read/update workload.
func Mix(seed int64, n, nkeys, readPct int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Read:   rng.Intn(100) < readPct,
			KeyIdx: rng.Intn(nkeys),
		}
	}
	return ops
}
