package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestKeyGenDeterministic(t *testing.T) {
	a := Keys(7, 16, 100)
	b := Keys(7, 16, 100)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("key %d differs between equal-seed generators", i)
		}
	}
	c := Keys(8, 16, 100)
	same := 0
	for i := range a {
		if bytes.Equal(a[i], c[i]) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d equal keys", same)
	}
}

func TestKeyAlphabetAndLength(t *testing.T) {
	for _, k := range Keys(1, 16, 500) {
		if len(k) != 16 {
			t.Fatalf("key length %d", len(k))
		}
		for _, b := range k {
			if !strings.ContainsRune(alphabet, rune(b)) {
				t.Fatalf("key byte %q outside alphabet", b)
			}
		}
	}
}

func TestKeysMostlyUnique(t *testing.T) {
	ks := Keys(3, 16, 10000)
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[string(k)] {
			t.Fatalf("duplicate 16B random key %q", k)
		}
		seen[string(k)] = true
	}
}

func TestValueTaggedAndSized(t *testing.T) {
	v := Value(128, 42)
	if len(v) != 128 {
		t.Fatalf("len = %d", len(v))
	}
	if !bytes.HasPrefix(v, []byte("val-42-")) {
		t.Fatalf("prefix = %q", v[:16])
	}
	if !bytes.Equal(Value(128, 42), v) {
		t.Fatal("Value not deterministic")
	}
	// Tiny values (8B, Figure 11) must not panic even when the tag is
	// longer than the value.
	small := Value(8, 123456)
	if len(small) != 8 {
		t.Fatalf("small len = %d", len(small))
	}
}

func TestMixRatio(t *testing.T) {
	ops := Mix(1, 10000, 100, 95)
	reads := 0
	for _, op := range ops {
		if op.Read {
			reads++
		}
		if op.KeyIdx < 0 || op.KeyIdx >= 100 {
			t.Fatalf("KeyIdx %d out of range", op.KeyIdx)
		}
	}
	pct := float64(reads) / 100.0
	if pct < 92 || pct > 98 {
		t.Fatalf("read pct = %.1f, want ~95", pct)
	}
}

func TestMixExtremes(t *testing.T) {
	for _, op := range Mix(2, 1000, 10, 100) {
		if !op.Read {
			t.Fatal("100/0 mix produced an update")
		}
	}
	for _, op := range Mix(2, 1000, 10, 0) {
		if op.Read {
			t.Fatal("0/100 mix produced a read")
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	a := Mix(5, 100, 50, 50)
	b := Mix(5, 100, 50, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}
