// Package rbtree implements a self-balancing red-black binary search tree
// keyed by byte slices. PapyrusKV uses it as the index structure of every
// MemTable: insert, lookup, and delete all take O(log n) time, and an
// in-order walk yields the key-sorted sequence an SSTable flush requires.
//
// The implementation is the classic CLRS formulation with a shared sentinel
// leaf. Keys are compared with bytes.Compare; inserting an existing key
// replaces the stored value (the paper's semantics: a new put deletes the old
// pair before inserting the new one).
package rbtree

import "bytes"

type color byte

const (
	red color = iota
	black
)

// node is a tree node. The sentinel leaf is a *node with color black.
type node struct {
	key                 []byte
	value               any
	left, right, parent *node
	color               color
}

// Tree is a red-black tree mapping []byte keys to arbitrary values.
// The zero value is not usable; call New.
type Tree struct {
	root *node
	nil_ *node // shared sentinel leaf
	size int
}

// New returns an empty tree.
func New() *Tree {
	sentinel := &node{color: black}
	return &Tree{root: sentinel, nil_: sentinel}
}

// Len reports the number of keys stored in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key and whether it was present.
func (t *Tree) Get(key []byte) (any, bool) {
	n := t.lookup(key)
	if n == t.nil_ {
		return nil, false
	}
	return n.value, true
}

func (t *Tree) lookup(key []byte) *node {
	n := t.root
	for n != t.nil_ {
		switch c := bytes.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n
		}
	}
	return t.nil_
}

// Put inserts key with value, replacing any existing value. It returns the
// previous value and whether a previous value existed.
func (t *Tree) Put(key []byte, value any) (prev any, replaced bool) {
	parent := t.nil_
	cur := t.root
	for cur != t.nil_ {
		parent = cur
		switch c := bytes.Compare(key, cur.key); {
		case c < 0:
			cur = cur.left
		case c > 0:
			cur = cur.right
		default:
			prev = cur.value
			cur.value = value
			return prev, true
		}
	}
	n := &node{key: key, value: value, left: t.nil_, right: t.nil_, parent: parent, color: red}
	switch {
	case parent == t.nil_:
		t.root = n
	case bytes.Compare(key, parent.key) < 0:
		parent.left = n
	default:
		parent.right = n
	}
	t.size++
	t.insertFixup(n)
	return nil, false
}

// Delete removes key from the tree. It returns the removed value and whether
// the key was present.
func (t *Tree) Delete(key []byte) (any, bool) {
	z := t.lookup(key)
	if z == t.nil_ {
		return nil, false
	}
	removed := z.value
	t.deleteNode(z)
	t.size--
	return removed, true
}

// Min returns the smallest key and its value, or ok=false on an empty tree.
func (t *Tree) Min() (key []byte, value any, ok bool) {
	if t.root == t.nil_ {
		return nil, nil, false
	}
	n := t.minimum(t.root)
	return n.key, n.value, true
}

// Max returns the largest key and its value, or ok=false on an empty tree.
func (t *Tree) Max() (key []byte, value any, ok bool) {
	if t.root == t.nil_ {
		return nil, nil, false
	}
	n := t.root
	for n.right != t.nil_ {
		n = n.right
	}
	return n.key, n.value, true
}

// Ascend walks the tree in ascending key order, calling fn for each pair.
// The walk stops early if fn returns false.
func (t *Tree) Ascend(fn func(key []byte, value any) bool) {
	t.AscendFrom(nil, fn)
}

// AscendFrom walks the tree in ascending key order starting at the smallest
// key >= start (a lower-bound seek; a nil or empty start begins at the
// minimum), calling fn for each pair until fn returns false or the keys run
// out. The walk is iterative — a lower-bound descent followed by
// parent-pointer successor steps — so a bounded scan over a large tree costs
// O(log n + visited) with no recursion depth to worry about.
func (t *Tree) AscendFrom(start []byte, fn func(key []byte, value any) bool) {
	for n := t.lowerBound(start); n != t.nil_; n = t.successor(n) {
		if !fn(n.key, n.value) {
			return
		}
	}
}

// lowerBound returns the node with the smallest key >= key, or the sentinel
// if every key is smaller. A nil/empty key returns the minimum.
func (t *Tree) lowerBound(key []byte) *node {
	if len(key) == 0 {
		if t.root == t.nil_ {
			return t.nil_
		}
		return t.minimum(t.root)
	}
	best := t.nil_
	n := t.root
	for n != t.nil_ {
		if bytes.Compare(n.key, key) >= 0 {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// successor returns the in-order successor of n, or the sentinel at the
// maximum. Nodes carry parent pointers, so the step is iterative and O(1)
// amortised over a full walk.
func (t *Tree) successor(n *node) *node {
	if n.right != t.nil_ {
		return t.minimum(n.right)
	}
	p := n.parent
	for p != t.nil_ && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

func (t *Tree) minimum(n *node) *node {
	for n.left != t.nil_ {
		n = n.left
	}
	return n
}

func (t *Tree) leftRotate(x *node) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree) rightRotate(x *node) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree) insertFixup(z *node) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree) transplant(u, v *node) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree) deleteNode(z *node) {
	y := z
	yOrig := y.color
	var x *node
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOrig = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrig == black {
		t.deleteFixup(x)
	}
}

func (t *Tree) deleteFixup(x *node) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rightRotate(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.leftRotate(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// Cursor is a pull-style in-order iterator: where Ascend/AscendFrom push
// pairs through a callback, a Cursor lets k-way merge loops pull one pair at
// a time from several trees. It holds a direct node reference, so it is only
// valid while the tree is not mutated — PapyrusKV uses it on sealed
// MemTables, whose trees never change again.
type Cursor struct {
	t *Tree
	n *node
}

// CursorFrom returns a cursor positioned at the smallest key >= start (nil
// or empty start: the minimum). The cursor starts invalid on an empty tree
// or when every key is smaller than start.
func (t *Tree) CursorFrom(start []byte) *Cursor {
	return &Cursor{t: t, n: t.lowerBound(start)}
}

// Valid reports whether the cursor is positioned on a pair.
func (c *Cursor) Valid() bool { return c.n != c.t.nil_ }

// Key returns the current pair's key; only meaningful while Valid.
func (c *Cursor) Key() []byte { return c.n.key }

// Value returns the current pair's value; only meaningful while Valid.
func (c *Cursor) Value() any { return c.n.value }

// Next advances to the in-order successor; the cursor becomes invalid past
// the maximum.
func (c *Cursor) Next() { c.n = c.t.successor(c.n) }
