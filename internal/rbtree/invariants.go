package rbtree

import (
	"bytes"
	"fmt"
)

// CheckInvariants verifies the red-black tree properties and the BST key
// ordering. It is exported for tests (including property-based tests) and
// returns a descriptive error on the first violation found.
//
// Properties checked:
//  1. The root is black.
//  2. No red node has a red child.
//  3. Every root-to-leaf path contains the same number of black nodes.
//  4. An in-order walk yields strictly increasing keys.
//  5. The recorded size matches the number of reachable nodes.
func (t *Tree) CheckInvariants() error {
	if t.root.color != black {
		return fmt.Errorf("rbtree: root is not black")
	}
	if t.nil_.color != black {
		return fmt.Errorf("rbtree: sentinel is not black")
	}
	count := 0
	if _, err := t.check(t.root, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rbtree: size %d but %d reachable nodes", t.size, count)
	}
	var prev []byte
	first := true
	ok := true
	t.Ascend(func(key []byte, _ any) bool {
		if !first && bytes.Compare(prev, key) >= 0 {
			ok = false
			return false
		}
		prev, first = key, false
		return true
	})
	if !ok {
		return fmt.Errorf("rbtree: in-order walk is not strictly increasing")
	}
	return nil
}

// check returns the black height of the subtree rooted at n.
func (t *Tree) check(n *node, count *int) (int, error) {
	if n == t.nil_ {
		return 1, nil
	}
	*count++
	if n.color == red {
		if n.left.color == red || n.right.color == red {
			return 0, fmt.Errorf("rbtree: red node %q has a red child", n.key)
		}
	}
	lh, err := t.check(n.left, count)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(n.right, count)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at %q: %d vs %d", n.key, lh, rh)
	}
	if n.color == black {
		lh++
	}
	return lh, nil
}
