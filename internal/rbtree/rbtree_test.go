package rbtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete([]byte("a")); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree returned ok")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("key%03d", i)), i)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get([]byte(fmt.Sprintf("key%03d", i)))
		if !ok || v.(int) != i {
			t.Fatalf("Get(key%03d) = %v, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get(missing) returned ok")
	}
}

func TestPutReplace(t *testing.T) {
	tr := New()
	if prev, replaced := tr.Put([]byte("k"), 1); replaced || prev != nil {
		t.Fatalf("first Put: prev=%v replaced=%v", prev, replaced)
	}
	prev, replaced := tr.Put([]byte("k"), 2)
	if !replaced || prev.(int) != 1 {
		t.Fatalf("second Put: prev=%v replaced=%v", prev, replaced)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	v, _ := tr.Get([]byte("k"))
	if v.(int) != 2 {
		t.Fatalf("Get = %v, want 2", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	keys := []string{"d", "b", "f", "a", "c", "e", "g"}
	for i, k := range keys {
		tr.Put([]byte(k), i)
	}
	for i, k := range keys {
		v, ok := tr.Delete([]byte(k))
		if !ok || v.(int) != i {
			t.Fatalf("Delete(%s) = %v, %v", k, v, ok)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%s): %v", k, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []string{"m", "c", "x", "a", "z"} {
		tr.Put([]byte(k), k)
	}
	k, _, _ := tr.Min()
	if string(k) != "a" {
		t.Fatalf("Min = %q, want a", k)
	}
	k, _, _ = tr.Max()
	if string(k) != "z" {
		t.Fatalf("Max = %q, want z", k)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	want := make([]string, 0, 500)
	seen := map[string]bool{}
	for len(want) < 500 {
		k := fmt.Sprintf("%08x", rng.Uint32())
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
			tr.Put([]byte(k), nil)
		}
	}
	sort.Strings(want)
	var got []string
	tr.Ascend(func(key []byte, _ any) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walk yielded %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("walk[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Put([]byte{byte('a' + i)}, i)
	}
	n := 0
	tr.Ascend(func(_ []byte, _ any) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early-stopped walk visited %d, want 3", n)
	}
}

// TestRandomizedMirror runs a long random op sequence against a map mirror
// and checks invariants periodically.
func TestRandomizedMirror(t *testing.T) {
	tr := New()
	mirror := map[string]int{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("%04d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			tr.Put([]byte(k), i)
			mirror[k] = i
		case 2:
			_, okT := tr.Delete([]byte(k))
			_, okM := mirror[k]
			if okT != okM {
				t.Fatalf("Delete(%s) ok=%v, mirror ok=%v", k, okT, okM)
			}
			delete(mirror, k)
		}
		if i%2000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if tr.Len() != len(mirror) {
		t.Fatalf("Len = %d, mirror %d", tr.Len(), len(mirror))
	}
	for k, v := range mirror {
		got, ok := tr.Get([]byte(k))
		if !ok || got.(int) != v {
			t.Fatalf("Get(%s) = %v, %v; want %d", k, got, ok, v)
		}
	}
}

// TestQuickInvariants is a property-based test: any key set, inserted in any
// order with arbitrary interleaved deletions, keeps the red-black invariants.
func TestQuickInvariants(t *testing.T) {
	f := func(keys [][]byte, deletes []byte) bool {
		tr := New()
		for _, k := range keys {
			tr.Put(k, len(k))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("after inserts: %v", err)
			return false
		}
		for _, d := range deletes {
			if int(d) < len(keys) {
				tr.Delete(keys[d])
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("after deletes: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortedWalk: the in-order walk of arbitrary inserted keys equals
// the sort of the deduplicated key set.
func TestQuickSortedWalk(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New()
		set := map[string]bool{}
		for _, k := range keys {
			tr.Put(k, nil)
			set[string(k)] = true
		}
		want := make([]string, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Strings(want)
		got := make([]string, 0, tr.Len())
		tr.Ascend(func(k []byte, _ any) bool {
			got = append(got, string(k))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthAndBinaryKeys(t *testing.T) {
	tr := New()
	tr.Put([]byte{}, "empty")
	tr.Put([]byte{0}, "zero")
	tr.Put([]byte{0, 0}, "zerozero")
	tr.Put([]byte{0xff}, "ff")
	if v, ok := tr.Get([]byte{}); !ok || v != "empty" {
		t.Fatalf("empty key: %v %v", v, ok)
	}
	var first []byte
	got := false
	tr.Ascend(func(k []byte, _ any) bool {
		if !got {
			first, got = k, true
		}
		return true
	})
	if !bytes.Equal(first, []byte{}) {
		t.Fatalf("first key = %v, want empty", first)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
}

func BenchmarkPut(b *testing.B) {
	keys := make([][]byte, 1<<16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%016d", i*2654435761))
	}
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i&(len(keys)-1)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	keys := make([][]byte, 1<<16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%016d", i*2654435761))
		tr.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i&(len(keys)-1)])
	}
}

// TestQuickAscendFromOracle is the lower-bound seek's property test: for any
// key set and any start key, AscendFrom(start) must yield exactly the suffix
// of the sorted, deduplicated key set beginning at the first key >= start —
// the same answer a sorted-slice binary search gives.
func TestQuickAscendFromOracle(t *testing.T) {
	f := func(keys [][]byte, start []byte) bool {
		tr := New()
		set := map[string]bool{}
		for _, k := range keys {
			tr.Put(k, nil)
			set[string(k)] = true
		}
		sorted := make([]string, 0, len(set))
		for k := range set {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		i := sort.SearchStrings(sorted, string(start))
		want := sorted[i:]
		got := make([]string, 0, len(want))
		tr.AscendFrom(start, func(k []byte, _ any) bool {
			got = append(got, string(k))
			return true
		})
		if len(got) != len(want) {
			t.Logf("AscendFrom(%q): got %d keys, want %d", start, len(got), len(want))
			return false
		}
		for j := range got {
			if got[j] != want[j] {
				t.Logf("AscendFrom(%q)[%d] = %q, want %q", start, j, got[j], want[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAscendFromSeeded pins the seek behaviour AscendFrom must keep under
// interleaved deletions (which exercise transplant's sentinel-parent writes):
// a seeded random op mix, checked against a sorted mirror after every batch.
func TestAscendFromSeeded(t *testing.T) {
	tr := New()
	mirror := map[string]bool{}
	rng := rand.New(rand.NewSource(0x5eed5ca9))
	check := func() {
		sorted := make([]string, 0, len(mirror))
		for k := range mirror {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		start := fmt.Sprintf("%04d", rng.Intn(3000))
		i := sort.SearchStrings(sorted, start)
		var got []string
		tr.AscendFrom([]byte(start), func(k []byte, _ any) bool {
			got = append(got, string(k))
			return true
		})
		want := sorted[i:]
		if len(got) != len(want) {
			t.Fatalf("AscendFrom(%s): %d keys, want %d", start, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("AscendFrom(%s)[%d] = %s, want %s", start, j, got[j], want[j])
			}
		}
	}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("%04d", rng.Intn(3000))
		if rng.Intn(3) < 2 {
			tr.Put([]byte(k), i)
			mirror[k] = true
		} else {
			tr.Delete([]byte(k))
			delete(mirror, k)
		}
		if i%500 == 0 {
			check()
		}
	}
	check()
	// Early stop must hold for seeks too.
	n := 0
	tr.AscendFrom([]byte("0"), func(_ []byte, _ any) bool {
		n++
		return n < 2
	})
	if n > 2 {
		t.Fatalf("early-stopped AscendFrom visited %d, want <= 2", n)
	}
}
