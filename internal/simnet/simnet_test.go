package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestNoDelayFabric(t *testing.T) {
	f := New(NoDelay)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		f.Transfer(1 << 20)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("NoDelay fabric took %v for 1000 transfers", elapsed)
	}
	msgs, bytes := f.Stats()
	if msgs != 1000 || bytes != 1000<<20 {
		t.Fatalf("Stats = %d msgs, %d bytes", msgs, bytes)
	}
}

func TestLatencyApplied(t *testing.T) {
	f := New(Config{Latency: 200 * time.Microsecond, TimeScale: 1})
	start := time.Now()
	f.Transfer(0)
	if elapsed := time.Since(start); elapsed < 150*time.Microsecond {
		t.Fatalf("transfer returned in %v, want >= ~200µs", elapsed)
	}
}

func TestBandwidthApplied(t *testing.T) {
	// 1 MB at 1 GB/s = 1 ms serialisation.
	f := New(Config{Bandwidth: 1e9, TimeScale: 1})
	start := time.Now()
	f.Transfer(1 << 20)
	elapsed := time.Since(start)
	if elapsed < 800*time.Microsecond {
		t.Fatalf("1MB at 1GB/s took %v, want ~1ms", elapsed)
	}
}

func TestTimeScale(t *testing.T) {
	slow := New(Config{Latency: time.Millisecond, TimeScale: 1})
	fast := New(Config{Latency: time.Millisecond, TimeScale: 0.01})
	s0 := time.Now()
	slow.Transfer(0)
	ds := time.Since(s0)
	f0 := time.Now()
	fast.Transfer(0)
	df := time.Since(f0)
	if df >= ds {
		t.Fatalf("scaled transfer (%v) not faster than unscaled (%v)", df, ds)
	}
}

func TestEstimateMatchesCostShape(t *testing.T) {
	f := New(Config{Latency: 10 * time.Microsecond, Bandwidth: 1e9, TimeScale: 1})
	small := f.Estimate(64)
	large := f.Estimate(1 << 20)
	if large <= small {
		t.Fatalf("Estimate(1MB)=%v <= Estimate(64B)=%v", large, small)
	}
}

func TestCongestionRaisesCost(t *testing.T) {
	cfg := Config{Latency: 50 * time.Microsecond, Bandwidth: 1e9, CongestionFactor: 0.5, TimeScale: 1}
	f := New(cfg)
	// Serial baseline.
	serialStart := time.Now()
	for i := 0; i < 8; i++ {
		f.Transfer(1 << 16)
	}
	serial := time.Since(serialStart)

	// Concurrent: 8 transfers at once must take longer than serial/8 — with
	// a strong congestion factor, total elapsed should exceed the perfectly
	// parallel lower bound by a wide margin.
	var wg sync.WaitGroup
	concStart := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Transfer(1 << 16)
		}()
	}
	wg.Wait()
	conc := time.Since(concStart)
	if conc < serial/8 {
		t.Fatalf("concurrent %v faster than ideal parallel %v", conc, serial/8)
	}
}

func TestSleepFidelity(t *testing.T) {
	for _, d := range []time.Duration{5 * time.Microsecond, 50 * time.Microsecond, 500 * time.Microsecond} {
		start := time.Now()
		Sleep(d)
		if got := time.Since(start); got < d {
			t.Fatalf("Sleep(%v) returned after %v", d, got)
		}
	}
	Sleep(0)  // must not hang
	Sleep(-1) // must not hang
}

func TestResetStats(t *testing.T) {
	f := New(NoDelay)
	f.Transfer(100)
	f.ResetStats()
	if m, b := f.Stats(); m != 0 || b != 0 {
		t.Fatalf("after reset: %d msgs %d bytes", m, b)
	}
}

func TestProfilesSane(t *testing.T) {
	for name, cfg := range map[string]Config{
		"EDR": EDRInfiniBand, "OPA": OmniPath, "Aries": AriesDragonfly,
	} {
		if cfg.Latency <= 0 || cfg.Bandwidth <= 0 || cfg.TimeScale != 1 {
			t.Fatalf("%s profile malformed: %+v", name, cfg)
		}
	}
}
