// Package simnet models the interconnection network of a distributed HPC
// system. PapyrusKV's evaluation ran over Mellanox EDR InfiniBand
// (Summitdev), Intel Omni-Path (Stampede), and the Cray Aries Dragonfly
// (Cori); with ranks running as goroutines inside one process, this package
// substitutes a calibrated cost model for the real fabric.
//
// Every transfer pays a per-message latency plus a serialisation time at the
// link bandwidth. Concurrent transfers contend: in-flight transfers share
// the modelled bandwidth and add a small congestion penalty per extra
// in-flight message. That contention term is what reproduces the paper's
// Figure 7 observation that the all-to-all flood at a relaxed-consistency
// barrier congests the network more than sequential-mode's already-paid
// synchronous sends.
//
// All delays are multiplied by a TimeScale so the benchmark harness can
// shrink the simulation uniformly (preserving every ratio) and unit tests
// can set the scale to zero to disable delays entirely.
package simnet

import (
	"sync/atomic"
	"time"
)

// Config describes one fabric.
type Config struct {
	// Latency is the one-way per-message latency.
	Latency time.Duration
	// Bandwidth is the link bandwidth in bytes per second. Zero means
	// infinite (no serialisation delay).
	Bandwidth float64
	// CongestionFactor adds this fraction of Latency per concurrent
	// in-flight transfer beyond the first, and divides effective
	// bandwidth among in-flight transfers. Zero disables contention.
	CongestionFactor float64
	// TimeScale multiplies every delay. 1.0 is real scale; the benchmark
	// harness uses ~0.01-0.05; zero disables delays.
	TimeScale float64
}

// Profiles for the paper's three systems (Table 2). Latency/bandwidth are
// public figures for the respective interconnect generations.
var (
	// EDRInfiniBand models Summitdev's Mellanox EDR fabric.
	EDRInfiniBand = Config{Latency: 1500 * time.Nanosecond, Bandwidth: 12.5e9, CongestionFactor: 0.08, TimeScale: 1}
	// OmniPath models Stampede's Intel Omni-Path fabric.
	OmniPath = Config{Latency: 1100 * time.Nanosecond, Bandwidth: 12.5e9, CongestionFactor: 0.10, TimeScale: 1}
	// AriesDragonfly models Cori's Cray Aries interconnect.
	AriesDragonfly = Config{Latency: 1700 * time.Nanosecond, Bandwidth: 15.0e9, CongestionFactor: 0.06, TimeScale: 1}
	// NoDelay disables all modelling; unit tests use it.
	NoDelay = Config{}
)

// Fabric is a shared interconnect instance. All ranks of a cluster transfer
// through one Fabric so contention is global, like a real switch.
type Fabric struct {
	cfg      Config
	inflight atomic.Int64

	// cumulative statistics
	messages atomic.Uint64
	bytes    atomic.Uint64
}

// New creates a fabric with the given configuration.
func New(cfg Config) *Fabric {
	return &Fabric{cfg: cfg}
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Transfer accounts for and delays one message of n payload bytes. It blocks
// the caller for the modelled duration and returns that duration.
func (f *Fabric) Transfer(n int) time.Duration {
	f.messages.Add(1)
	f.bytes.Add(uint64(n))
	if f.cfg.TimeScale <= 0 {
		return 0
	}
	concurrent := f.inflight.Add(1)
	defer f.inflight.Add(-1)

	d := f.cost(n, concurrent)
	Sleep(d)
	return d
}

// Estimate returns the modelled duration of an n-byte transfer at the
// current congestion level without performing it.
func (f *Fabric) Estimate(n int) time.Duration {
	if f.cfg.TimeScale <= 0 {
		return 0
	}
	return f.cost(n, f.inflight.Load()+1)
}

func (f *Fabric) cost(n int, concurrent int64) time.Duration {
	lat := float64(f.cfg.Latency)
	if f.cfg.CongestionFactor > 0 && concurrent > 1 {
		lat *= 1 + f.cfg.CongestionFactor*float64(concurrent-1)
	}
	ser := 0.0
	if f.cfg.Bandwidth > 0 {
		bw := f.cfg.Bandwidth
		if f.cfg.CongestionFactor > 0 && concurrent > 1 {
			bw /= float64(concurrent)
		}
		ser = float64(n) / bw * float64(time.Second)
	}
	return time.Duration((lat + ser) * f.cfg.TimeScale)
}

// Stats returns the cumulative message and byte counts.
func (f *Fabric) Stats() (messages, bytes uint64) {
	return f.messages.Load(), f.bytes.Load()
}

// ResetStats zeroes the cumulative counters.
func (f *Fabric) ResetStats() {
	f.messages.Store(0)
	f.bytes.Store(0)
}

// spinThreshold is the boundary below which Sleep busy-waits. The Go runtime
// cannot reliably sleep for less than a few tens of microseconds, and the
// fabric/device models routinely need sub-10µs delays with correct ratios.
const spinThreshold = 80 * time.Microsecond

// Sleep delays the caller for d with microsecond fidelity: short delays
// busy-wait on the monotonic clock, long delays use the timer. Exported for
// the NVM device model, which needs the same fidelity.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= spinThreshold {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
