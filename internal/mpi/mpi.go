// Package mpi is a message-passing runtime with MPI semantics for SPMD
// programs whose ranks run as goroutines in a single process.
//
// PapyrusKV is implemented as a user-level library on top of MPI, requiring
// only: tagged, source-matched point-to-point messages with FIFO ordering
// per (source, destination, communicator); wildcard receives (ANY_SOURCE /
// ANY_TAG); collectives (barrier, broadcast, gather, allgather, allreduce);
// private communicators (MPI_Comm_dup) so the runtime's message dispatcher
// and handler threads never interfere with application traffic; and full
// thread safety (MPI_THREAD_MULTIPLE). This package reproduces exactly that
// contract. Transfers are charged to a simnet.Fabric cost model, with
// intra-node messages optionally routed over a faster shared-memory fabric,
// mirroring how MPI implementations short-circuit on-node traffic.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/simnet"
)

// Wildcards for Recv and Probe.
const (
	AnySource = -1
	AnyTag    = -2
)

// ErrAborted is returned from blocked or subsequent operations after any
// rank calls Abort or returns an error from the Run body.
var ErrAborted = errors.New("mpi: world aborted")

// ErrTimeout is returned by RecvTimeout when no matching message arrives
// within the deadline. The caller decides whether to retry or to declare the
// peer failed; the runtime itself never aborts on a timeout.
var ErrTimeout = errors.New("mpi: receive timed out")

// Message is a received message.
type Message struct {
	Source int // rank within the communicator the message arrived on
	Tag    int
	Data   []byte
}

// Topology describes how ranks map onto nodes and which fabric connects
// them. RanksPerNode <= 0 places all ranks on one node.
type Topology struct {
	RanksPerNode int
	Net          *simnet.Fabric // inter-node transfers; nil = free
	Shm          *simnet.Fabric // intra-node transfers; nil = free
}

// NodeOf returns the node index hosting rank r.
func (t Topology) NodeOf(r int) int {
	if t.RanksPerNode <= 0 {
		return 0
	}
	return r / t.RanksPerNode
}

// World is one SPMD program instance: a fixed set of ranks plus the mailbox
// fabric connecting them.
type World struct {
	size int
	topo Topology

	mu       sync.Mutex
	boxes    map[boxKey]*mailbox
	barriers map[string]*shmBarrier
	aborted  bool
	abortErr error

	// remote, when non-nil, makes this World one process's view of a
	// multi-process world: sends to other ranks go through the TCP mesh
	// and only this process's rank has local mailboxes (see JoinTCP).
	remote *tcpMesh

	// inj, when non-nil, arms the network injection points (NetDrop,
	// NetDelay, NetDup) on every public Send in this world.
	inj *faults.Injector
}

type boxKey struct {
	comm string
	rank int
}

// NewWorld creates a world of size ranks connected by topo.
func NewWorld(size int, topo Topology) *World {
	if size < 1 {
		size = 1
	}
	return &World{
		size:     size,
		topo:     topo,
		boxes:    make(map[boxKey]*mailbox),
		barriers: make(map[string]*shmBarrier),
	}
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// InjectFaults arms the world's network injection points. Faults apply only
// to public Sends (tag >= 0): collectives and bootstrap traffic use the
// reserved negative tag space and stay reliable, mirroring fabrics where the
// transport layer retransmits but the application-level protocol can still
// lose messages. Each Send reports Site{Rank: sender world rank, Tag: tag,
// Where: communicator ID}. A nil injector disarms.
func (w *World) InjectFaults(inj *faults.Injector) {
	w.mu.Lock()
	w.inj = inj
	w.mu.Unlock()
}

func (w *World) injector() *faults.Injector {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inj
}

// Topology returns the world topology.
func (w *World) Topology() Topology { return w.topo }

// Run executes fn once per rank, each on its own goroutine, passing each
// rank its COMM_WORLD communicator. It returns the first non-nil error; a
// failing rank aborts the world so the remaining ranks unblock with
// ErrAborted rather than hanging.
func (w *World) Run(fn func(*Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
					w.Abort(errs[r])
				}
			}()
			c := w.commWorld(r)
			if err := fn(c); err != nil {
				errs[r] = err
				w.Abort(err)
			}
		}(r)
	}
	wg.Wait()
	// Prefer the root cause recorded by the first Abort over secondary
	// ErrAborted failures from ranks that were merely unblocked.
	w.mu.Lock()
	rootCause := w.abortErr
	w.mu.Unlock()
	if rootCause != nil && !errors.Is(rootCause, ErrAborted) {
		return rootCause
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Abort marks the world failed, waking every blocked operation.
func (w *World) Abort(err error) {
	w.mu.Lock()
	if !w.aborted {
		w.aborted = true
		if err == nil {
			err = ErrAborted
		}
		w.abortErr = err
	}
	boxes := make([]*mailbox, 0, len(w.boxes))
	for _, b := range w.boxes {
		boxes = append(boxes, b)
	}
	bars := make([]*shmBarrier, 0, len(w.barriers))
	for _, b := range w.barriers {
		bars = append(bars, b)
	}
	w.mu.Unlock()
	for _, b := range boxes {
		b.abort()
	}
	for _, b := range bars {
		b.abort()
	}
}

func (w *World) abortedErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		return w.abortErr
	}
	return nil
}

func (w *World) box(comm string, rank int) *mailbox {
	key := boxKey{comm, rank}
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.boxes[key]
	if !ok {
		b = newMailbox()
		if w.aborted {
			b.abort()
		}
		w.boxes[key] = b
	}
	return b
}

func (w *World) barrier(id string) *shmBarrier {
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.barriers[id]
	if !ok {
		b = newShmBarrier()
		if w.aborted {
			b.abort()
		}
		w.barriers[id] = b
	}
	return b
}

// transfer charges the fabric for a message of n bytes from world rank src
// to world rank dst.
func (w *World) transfer(src, dst, n int) {
	if src == dst {
		return // self-sends stay in-process
	}
	const header = 64 // envelope bytes per message
	if w.topo.NodeOf(src) == w.topo.NodeOf(dst) {
		if w.topo.Shm != nil {
			w.topo.Shm.Transfer(n + header)
		}
		return
	}
	if w.topo.Net != nil {
		w.topo.Net.Transfer(n + header)
	}
}

func (w *World) commWorld(rank int) *Comm {
	members := make([]int, w.size)
	for i := range members {
		members[i] = i
	}
	return &Comm{world: w, id: "world", rank: rank, members: members}
}

// Comm is one rank's handle on a communicator. Point-to-point and collective
// operations address ranks in the communicator's own rank space.
type Comm struct {
	world   *World
	id      string
	rank    int   // this rank's index within members
	members []int // communicator rank -> world rank

	// msgBarrier selects the dissemination (message-based) barrier used
	// by distributed worlds, where no shared memory exists across ranks.
	msgBarrier bool

	mu      sync.Mutex
	dupSeq  int
	collSeq int
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank returns the world rank behind communicator rank r.
func (c *Comm) WorldRank(r int) int { return c.members[r] }

// World returns the underlying world.
func (c *Comm) World() *World { return c.world }

// ID returns the communicator identity, equal on all member ranks.
func (c *Comm) ID() string { return c.id }

// Send delivers data to rank dest under tag. Tags must be non-negative;
// negative tags are reserved for collectives. Data is copied, so the caller
// may reuse the buffer immediately. Send blocks only for the modelled
// transfer time (buffered/eager semantics).
func (c *Comm) Send(dest, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: Send tag %d is negative (reserved)", tag)
	}
	// Self-sends are loopback: they never cross the interconnect, so
	// network faults cannot touch them. (Close's shutdown control message
	// relies on this — a droppable self-send could hang teardown forever.)
	if inj := c.world.injector(); inj != nil && dest != c.rank {
		site := faults.Site{Rank: c.members[c.rank], Tag: tag, Where: c.id}
		if dec := inj.Eval(faults.NetDelay, site); dec.Fire && dec.Delay > 0 {
			time.Sleep(dec.Delay)
		}
		if inj.Eval(faults.NetDrop, site).Fire {
			return nil // lost in flight: the sender sees success
		}
		if inj.Eval(faults.NetDup, site).Fire {
			if err := c.send(dest, tag, data); err != nil {
				return err
			}
		}
	}
	return c.send(dest, tag, data)
}

// SendOwned is Send for a buffer the caller abandons: the data is handed to
// the receiver without the defensive copy, so the caller must not read or
// write it after the call. Use it for large one-shot frames on hot reply
// paths; everything else should keep the reuse-safe Send.
func (c *Comm) SendOwned(dest, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: Send tag %d is negative (reserved)", tag)
	}
	if inj := c.world.injector(); inj != nil && dest != c.rank {
		site := faults.Site{Rank: c.members[c.rank], Tag: tag, Where: c.id}
		if dec := inj.Eval(faults.NetDelay, site); dec.Fire && dec.Delay > 0 {
			time.Sleep(dec.Delay)
		}
		if inj.Eval(faults.NetDrop, site).Fire {
			return nil // lost in flight: the sender sees success
		}
		if inj.Eval(faults.NetDup, site).Fire {
			// The duplicate delivery copies; only the final one owns data.
			if err := c.send(dest, tag, data); err != nil {
				return err
			}
		}
	}
	return c.sendBuf(dest, tag, data, true)
}

func (c *Comm) send(dest, tag int, data []byte) error {
	return c.sendBuf(dest, tag, data, false)
}

func (c *Comm) sendBuf(dest, tag int, data []byte, owned bool) error {
	if err := c.world.abortedErr(); err != nil {
		return err
	}
	if dest < 0 || dest >= len(c.members) {
		return fmt.Errorf("mpi: Send dest %d out of range [0,%d)", dest, len(c.members))
	}
	c.world.transfer(c.members[c.rank], c.members[dest], len(data))
	if m := c.world.remote; m != nil && c.members[dest] != m.rank {
		// Distributed world: the destination rank lives in another
		// process.
		return m.send(c.id, c.rank, dest, c.members[dest], tag, data)
	}
	buf := data
	if !owned {
		buf = make([]byte, len(data))
		copy(buf, data)
	}
	return c.world.box(c.id, dest).deliver(Message{Source: c.rank, Tag: tag, Data: buf})
}

// Recv blocks until a message matching source and tag arrives. Use AnySource
// and/or AnyTag as wildcards.
func (c *Comm) Recv(source, tag int) (Message, error) {
	return c.world.box(c.id, c.rank).recv(source, tag)
}

// RecvTimeout is Recv bounded by a deadline: it returns ErrTimeout if no
// matching message arrives within d. d <= 0 means no deadline. Retry loops
// over lossy paths use it so a dropped message stalls one attempt, not the
// whole rank.
func (c *Comm) RecvTimeout(source, tag int, d time.Duration) (Message, error) {
	return c.world.box(c.id, c.rank).recvDeadline(source, tag, d)
}

// TryRecv returns a matching message if one is already queued.
func (c *Comm) TryRecv(source, tag int) (Message, bool, error) {
	return c.world.box(c.id, c.rank).tryRecv(source, tag)
}

// Probe reports whether a message matching source and tag is queued, and if
// so its actual source and tag, without consuming it.
func (c *Comm) Probe(source, tag int) (src, actualTag int, ok bool) {
	return c.world.box(c.id, c.rank).probe(source, tag)
}

// Dup returns a new communicator over the same ranks. As in MPI, every
// member must call Dup, and calls on one communicator must occur in the same
// order on all ranks; the n-th Dup on each rank yields the same new
// communicator. PapyrusKV dups the world communicator for its runtime
// message traffic so it never collides with application messages.
func (c *Comm) Dup() *Comm {
	c.mu.Lock()
	seq := c.dupSeq
	c.dupSeq++
	c.mu.Unlock()
	return &Comm{
		world:      c.world,
		id:         fmt.Sprintf("%s/d%d", c.id, seq),
		rank:       c.rank,
		members:    c.members,
		msgBarrier: c.msgBarrier,
	}
}

// Split partitions the communicator by color, ordering ranks within each new
// communicator by key (ties broken by old rank). All members must call it.
// A negative color returns nil (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) (*Comm, error) {
	c.mu.Lock()
	seq := c.dupSeq
	c.dupSeq++
	c.mu.Unlock()
	type ck struct{ color, key, rank int }
	mine := fmt.Sprintf("%d %d %d", color, key, c.rank)
	all, err := c.Allgather([]byte(mine))
	if err != nil {
		return nil, err
	}
	entries := make([]ck, 0, len(all))
	for _, raw := range all {
		var e ck
		if _, err := fmt.Sscanf(string(raw), "%d %d %d", &e.color, &e.key, &e.rank); err != nil {
			return nil, fmt.Errorf("mpi: Split gather decode: %w", err)
		}
		if e.color >= 0 {
			entries = append(entries, e)
		}
	}
	if color < 0 {
		return nil, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].color != entries[j].color {
			return entries[i].color < entries[j].color
		}
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].rank < entries[j].rank
	})
	var members []int
	myNewRank := -1
	for _, e := range entries {
		if e.color != color {
			continue
		}
		if e.rank == c.rank {
			myNewRank = len(members)
		}
		members = append(members, c.members[e.rank])
	}
	return &Comm{
		world:      c.world,
		id:         fmt.Sprintf("%s/s%d:%d", c.id, seq, color),
		rank:       myNewRank,
		members:    members,
		msgBarrier: c.msgBarrier,
	}, nil
}
