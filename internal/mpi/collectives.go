package mpi

import (
	"encoding/binary"
	"fmt"
)

// ReduceOp selects the combining operator of AllreduceInt64.
type ReduceOp int

const (
	// OpSum adds the contributions.
	OpSum ReduceOp = iota
	// OpMax takes the maximum contribution.
	OpMax
	// OpMin takes the minimum contribution.
	OpMin
)

// Collective operations use the negative tag space, disjoint from user tags,
// sequenced per communicator so back-to-back collectives cannot cross-match.
// As in MPI, all ranks of a communicator must call the same collectives in
// the same order.
func (c *Comm) nextCollTag(op int) int {
	c.mu.Lock()
	seq := c.collSeq
	c.collSeq++
	c.mu.Unlock()
	return -(3 + seq*8 + op)
}

// Barrier blocks until every rank of the communicator has entered it. An
// in-process world rendezvouses in memory; a distributed world runs the
// dissemination algorithm over point-to-point messages.
func (c *Comm) Barrier() error {
	if err := c.world.abortedErr(); err != nil {
		return err
	}
	if c.msgBarrier {
		return c.disseminationBarrier()
	}
	// Charge one small control message per rank so barriers have a
	// latency cost that grows with congestion, then rendezvous in memory.
	c.world.transfer(c.members[c.rank], c.members[(c.rank+1)%len(c.members)], 8)
	return c.world.barrier(c.id).wait(len(c.members))
}

// disseminationBarrier completes in ceil(log2(n)) rounds: in round k every
// rank sends a token to the rank 2^k ahead and receives one from the rank
// 2^k behind. After the last round every rank transitively depends on every
// other rank's arrival.
func (c *Comm) disseminationBarrier() error {
	n := len(c.members)
	if n == 1 {
		return nil
	}
	tag := c.nextCollTag(7)
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist%n + n) % n
		if err := c.send(to, tag, nil); err != nil {
			return err
		}
		if _, err := c.Recv(from, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank and returns it. Non-root ranks
// pass nil (their argument is ignored).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	tag := c.nextCollTag(0)
	if c.rank == root {
		for r := 0; r < len(c.members); r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.Recv(root, tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Gather collects each rank's data at root. On root the result has one entry
// per rank, indexed by rank; other ranks receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	tag := c.nextCollTag(1)
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, len(c.members))
	out[root] = append([]byte(nil), data...)
	for i := 0; i < len(c.members)-1; i++ {
		m, err := c.Recv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.Source] = m.Data
	}
	return out, nil
}

// Allgather collects each rank's data on every rank, indexed by rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	gathered, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = packSlices(gathered)
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	return unpackSlices(packed)
}

// AllreduceInt64 combines one int64 per rank with op and returns the result
// on every rank. PapyrusKV uses it, e.g., to agree on the maximum flushed
// SSID during barriers.
func (c *Comm) AllreduceInt64(v int64, op ReduceOp) (int64, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	gathered, err := c.Gather(0, buf[:])
	if err != nil {
		return 0, err
	}
	var acc int64
	if c.rank == 0 {
		for i, raw := range gathered {
			x := int64(binary.LittleEndian.Uint64(raw))
			if i == 0 {
				acc = x
				continue
			}
			switch op {
			case OpSum:
				acc += x
			case OpMax:
				if x > acc {
					acc = x
				}
			case OpMin:
				if x < acc {
					acc = x
				}
			default:
				return 0, fmt.Errorf("mpi: unknown reduce op %d", op)
			}
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(acc))
	}
	out, err := c.Bcast(0, buf[:])
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out)), nil
}

// packSlices flattens a slice-of-slices with uint32 length prefixes.
func packSlices(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

func unpackSlices(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("mpi: short packed slice set")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("mpi: truncated packed slice header")
		}
		l := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, fmt.Errorf("mpi: truncated packed slice body")
		}
		out = append(out, data[:l:l])
		data = data[l:]
	}
	return out, nil
}
