package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"papyruskv/internal/faults"
)

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2, Topology{})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // never sends
		}
		start := time.Now()
		_, err := c.RecvTimeout(1, 7, 30*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return errors.New("expected ErrTimeout")
		}
		if time.Since(start) < 25*time.Millisecond {
			return errors.New("returned before deadline")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDeliveredInTime(t *testing.T) {
	w := NewWorld(2, Topology{})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, 7, []byte("hi"))
		}
		m, err := c.RecvTimeout(1, 7, 5*time.Second)
		if err != nil {
			return err
		}
		if string(m.Data) != "hi" {
			return errors.New("wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInjectNetDrop(t *testing.T) {
	w := NewWorld(2, Topology{})
	w.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NetDrop, Rank: 0, Tag: 7, Count: 1}))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// First send is dropped, second arrives.
			if err := c.Send(1, 7, []byte("lost")); err != nil {
				return err
			}
			return c.Send(1, 7, []byte("kept"))
		}
		m, err := c.RecvTimeout(0, 7, 5*time.Second)
		if err != nil {
			return err
		}
		if string(m.Data) != "kept" {
			return errors.New("dropped message arrived: " + string(m.Data))
		}
		if _, err := c.RecvTimeout(0, 7, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
			return errors.New("second message materialised from nowhere")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInjectNetDup(t *testing.T) {
	w := NewWorld(2, Topology{})
	w.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NetDup, Rank: 0, Count: 1}))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("x"))
		}
		for i := 0; i < 2; i++ {
			if _, err := c.RecvTimeout(0, 3, 5*time.Second); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInjectNetDelay(t *testing.T) {
	w := NewWorld(2, Topology{})
	w.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NetDelay, Rank: 0, Count: 1, Delay: 50 * time.Millisecond}))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			start := time.Now()
			if err := c.Send(1, 3, nil); err != nil {
				return err
			}
			if time.Since(start) < 40*time.Millisecond {
				return errors.New("delayed send returned too fast")
			}
			return nil
		}
		_, err := c.Recv(0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Collectives must stay reliable even under an aggressive drop-everything
// rule: only public Sends (tag >= 0) pass through the injection points.
func TestCollectivesImmuneToNetFaults(t *testing.T) {
	w := NewWorld(4, Topology{})
	w.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NetDrop, Rank: faults.AnyRank, Probability: 1, Fires: 1 << 30}))
	err := w.Run(func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := c.AllreduceInt64(int64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if got != 6 {
			return errors.New("allreduce wrong under net faults")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDialRetryTimeoutWrapsAddr(t *testing.T) {
	// 127.0.0.1:1 is essentially guaranteed closed.
	_, err := dialRetryTimeout("127.0.0.1:1", 50*time.Millisecond)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if want := "127.0.0.1:1"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not name the peer %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSelfSendImmuneToNetFaults(t *testing.T) {
	// A rank's message to itself is loopback — it never crosses the
	// interconnect, so even a drop-everything rule must not touch it.
	// Teardown control messages (core's shutdown self-send) depend on this.
	w := NewWorld(2, Topology{})
	w.InjectFaults(faults.New(3).
		Enable(faults.Rule{Point: faults.NetDrop, Rank: faults.AnyRank, Tag: faults.AnyTag, Probability: 1}))
	err := w.Run(func(c *Comm) error {
		if err := c.Send(c.Rank(), 9, []byte("self")); err != nil {
			return err
		}
		m, err := c.Recv(c.Rank(), 9)
		if err != nil {
			return err
		}
		if string(m.Data) != "self" {
			return fmt.Errorf("self-send payload = %q", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
