package mpi

import (
	"sync"
	"time"
)

// mailbox is one rank's receive queue on one communicator. Messages are kept
// in arrival order; matching scans from the head, preserving MPI's
// non-overtaking guarantee for messages from the same source and tag.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	aborted bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) deliver(m Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	b.queue = append(b.queue, m)
	b.cond.Broadcast()
	return nil
}

func matches(m Message, source, tag int) bool {
	if source != AnySource && m.Source != source {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// recv blocks until a matching message is queued, then removes and returns
// it. Queued messages remain receivable after an abort — a message that was
// delivered before the failure is still valid — so the scan runs before the
// abort check.
func (b *mailbox) recv(source, tag int) (Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if matches(m, source, tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		if b.aborted {
			return Message{}, ErrAborted
		}
		b.cond.Wait()
	}
}

// recvDeadline is recv bounded by a deadline; d <= 0 blocks forever. The
// timer fires a broadcast so the waiter re-checks and sees the expiry.
func (b *mailbox) recvDeadline(source, tag int, d time.Duration) (Message, error) {
	if d <= 0 {
		return b.recv(source, tag)
	}
	expired := false
	timer := time.AfterFunc(d, func() {
		b.mu.Lock()
		expired = true
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer timer.Stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if matches(m, source, tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		if b.aborted {
			return Message{}, ErrAborted
		}
		if expired {
			return Message{}, ErrTimeout
		}
		b.cond.Wait()
	}
}

func (b *mailbox) tryRecv(source, tag int) (Message, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.queue {
		if matches(m, source, tag) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m, true, nil
		}
	}
	if b.aborted {
		return Message{}, false, ErrAborted
	}
	return Message{}, false, nil
}

func (b *mailbox) probe(source, tag int) (int, int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.queue {
		if matches(m, source, tag) {
			return m.Source, m.Tag, true
		}
	}
	return 0, 0, false
}

func (b *mailbox) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}

// shmBarrier is a reusable counting barrier shared by the member ranks of
// one communicator.
type shmBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     uint64
	aborted bool
}

func newShmBarrier() *shmBarrier {
	b := &shmBarrier{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until n participants have arrived (or the world aborts).
func (b *shmBarrier) wait(n int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return ErrAborted
	}
	return nil
}

func (b *shmBarrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}
