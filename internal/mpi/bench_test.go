package mpi

import (
	"sync"
	"testing"
)

// Benchmarks for the message layer itself: per-op costs with the cost
// model disabled, so they measure the runtime's own overhead.

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2, Topology{})
	var wg sync.WaitGroup
	wg.Add(2)
	start := make(chan struct{})
	go func() {
		defer wg.Done()
		c := w.commWorld(0)
		<-start
		payload := make([]byte, 64)
		for i := 0; i < b.N; i++ {
			if err := c.Send(1, 0, payload); err != nil {
				b.Error(err)
				return
			}
			if _, err := c.Recv(1, 1); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		c := w.commWorld(1)
		<-start
		payload := make([]byte, 64)
		for i := 0; i < b.N; i++ {
			if _, err := c.Recv(0, 0); err != nil {
				b.Error(err)
				return
			}
			if err := c.Send(0, 1, payload); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	close(start)
	wg.Wait()
}

func BenchmarkBarrier8(b *testing.B) {
	w := NewWorld(8, Topology{})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.commWorld(r)
			<-start
			for i := 0; i < b.N; i++ {
				if err := c.Barrier(); err != nil {
					b.Error(err)
					return
				}
			}
		}(r)
	}
	b.ResetTimer()
	close(start)
	wg.Wait()
}

func BenchmarkAllreduce8(b *testing.B) {
	w := NewWorld(8, Topology{})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.commWorld(r)
			<-start
			for i := 0; i < b.N; i++ {
				if _, err := c.AllreduceInt64(int64(r), OpSum); err != nil {
					b.Error(err)
					return
				}
			}
		}(r)
	}
	b.ResetTimer()
	close(start)
	wg.Wait()
}
