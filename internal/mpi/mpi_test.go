package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"papyruskv/internal/simnet"
)

func freeTopo() Topology { return Topology{} }

func runWorld(t *testing.T, n int, fn func(*Comm) error) {
	t.Helper()
	w := NewWorld(n, freeTopo())
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvPair(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("hello"))
		}
		m, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(m.Data) != "hello" || m.Source != 0 || m.Tag != 5 {
			return fmt.Errorf("got %+v", m)
		}
		return nil
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			copy(buf, "clobber!")
			return nil
		}
		m, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(m.Data) != "original" {
			return fmt.Errorf("buffer aliased: %q", m.Data)
		}
		return nil
	})
}

func TestFIFOOrderingPerSource(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		const n = 200
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if m.Data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order: %d", i, m.Data[0])
			}
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runWorld(t, 4, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 10+c.Rank(), []byte{byte(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			m, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if m.Tag != 10+m.Source || int(m.Data[0]) != m.Source {
				return fmt.Errorf("mismatched message %+v", m)
			}
			seen[m.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %d sources", len(seen))
		}
		return nil
	})
}

func TestTagSelectiveRecv(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("second"))
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m2.Data) != "second" || string(m1.Data) != "first" {
			return fmt.Errorf("tag matching broken: %q %q", m2.Data, m1.Data)
		}
		return nil
	})
}

func TestNegativeUserTagRejected(t *testing.T) {
	runWorld(t, 1, func(c *Comm) error {
		if err := c.Send(0, -1, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		return nil
	})
}

func TestSendOutOfRange(t *testing.T) {
	runWorld(t, 1, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("out-of-range dest accepted")
		}
		return nil
	})
}

func TestTryRecvAndProbe(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, ok, err := c.TryRecv(AnySource, AnyTag); err != nil || ok {
				return fmt.Errorf("TryRecv on empty box: ok=%v err=%v", ok, err)
			}
			if _, _, ok := c.Probe(AnySource, AnyTag); ok {
				return errors.New("Probe on empty box succeeded")
			}
			if err := c.Barrier(); err != nil { // rank 1 sends after this
				return err
			}
			for {
				src, tag, ok := c.Probe(1, 7)
				if ok {
					if src != 1 || tag != 7 {
						return fmt.Errorf("Probe = %d,%d", src, tag)
					}
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			m, ok, err := c.TryRecv(1, 7)
			if err != nil || !ok || string(m.Data) != "x" {
				return fmt.Errorf("TryRecv = %+v, %v, %v", m, ok, err)
			}
			return nil
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Send(0, 7, []byte("x"))
	})
}

func TestBarrierSynchronises(t *testing.T) {
	const n = 8
	var phase atomic.Int32
	runWorld(t, n, func(c *Comm) error {
		phase.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := phase.Load(); got != n {
			return fmt.Errorf("rank %d passed barrier with phase=%d", c.Rank(), got)
		}
		return nil
	})
}

func TestBarrierReusable(t *testing.T) {
	var counter atomic.Int64
	runWorld(t, 4, func(c *Comm) error {
		for round := 0; round < 10; round++ {
			counter.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := counter.Load(); got != int64(4*(round+1)) {
				return fmt.Errorf("round %d: counter=%d", round, got)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	runWorld(t, 5, func(c *Comm) error {
		var in []byte
		if c.Rank() == 2 {
			in = []byte("payload")
		}
		out, err := c.Bcast(2, in)
		if err != nil {
			return err
		}
		if string(out) != "payload" {
			return fmt.Errorf("rank %d got %q", c.Rank(), out)
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	runWorld(t, 6, func(c *Comm) error {
		out, err := c.Gather(3, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 3 {
			if out != nil {
				return errors.New("non-root got data")
			}
			return nil
		}
		for r, d := range out {
			if len(d) != 1 || d[0] != byte(r*10) {
				return fmt.Errorf("gather[%d] = %v", r, d)
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	runWorld(t, 7, func(c *Comm) error {
		out, err := c.Allgather([]byte(fmt.Sprintf("rank%d", c.Rank())))
		if err != nil {
			return err
		}
		if len(out) != 7 {
			return fmt.Errorf("len = %d", len(out))
		}
		for r, d := range out {
			if string(d) != fmt.Sprintf("rank%d", r) {
				return fmt.Errorf("allgather[%d] = %q", r, d)
			}
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	runWorld(t, 8, func(c *Comm) error {
		sum, err := c.AllreduceInt64(int64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 36 {
			return fmt.Errorf("sum = %d, want 36", sum)
		}
		max, err := c.AllreduceInt64(int64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if max != 7 {
			return fmt.Errorf("max = %d, want 7", max)
		}
		min, err := c.AllreduceInt64(int64(c.Rank())-3, OpMin)
		if err != nil {
			return err
		}
		if min != -3 {
			return fmt.Errorf("min = %d, want -3", min)
		}
		return nil
	})
}

func TestDupIsolation(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		priv := c.Dup()
		if c.Rank() == 0 {
			// Same tag on both communicators must not cross.
			if err := c.Send(1, 9, []byte("app")); err != nil {
				return err
			}
			return priv.Send(1, 9, []byte("runtime"))
		}
		mp, err := priv.Recv(0, 9)
		if err != nil {
			return err
		}
		ma, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(mp.Data) != "runtime" || string(ma.Data) != "app" {
			return fmt.Errorf("crossed: priv=%q app=%q", mp.Data, ma.Data)
		}
		return nil
	})
}

func TestDupDeterministicIdentity(t *testing.T) {
	ids := make([]string, 4)
	runWorld(t, 4, func(c *Comm) error {
		d1 := c.Dup()
		d2 := c.Dup()
		if d1.ID() == d2.ID() {
			return errors.New("successive dups share an ID")
		}
		ids[c.Rank()] = d2.ID()
		return nil
	})
	for r := 1; r < 4; r++ {
		if ids[r] != ids[0] {
			t.Fatalf("rank %d dup ID %q != rank 0 %q", r, ids[r], ids[0])
		}
	}
}

func TestSplit(t *testing.T) {
	runWorld(t, 6, func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		// Even ranks 0,2,4 -> sub ranks 0,1,2; odd 1,3,5 likewise.
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		if sub.WorldRank(sub.Rank()) != c.Rank() {
			return fmt.Errorf("WorldRank mapping broken")
		}
		// Collectives work on the split communicator.
		sum, err := sub.AllreduceInt64(int64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		want := int64(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			return fmt.Errorf("split sum = %d, want %d", sum, want)
		}
		return sub.Barrier()
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	runWorld(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return errors.New("undefined color got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d, want 3", sub.Size())
		}
		return nil
	})
}

func TestAbortUnblocksRecv(t *testing.T) {
	w := NewWorld(2, freeTopo())
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 0) // never sent
			if !errors.Is(err, ErrAborted) && err == nil {
				return errors.New("Recv returned without abort")
			}
			return nil
		}
		return errors.New("rank 1 fails")
	})
	if err == nil || err.Error() != "rank 1 fails" {
		t.Fatalf("Run error = %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	w := NewWorld(2, freeTopo())
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		_, err := c.Recv(1, 0)
		_ = err
		return nil
	})
	if err == nil {
		t.Fatal("Run did not report panic")
	}
}

func TestThreadMultiple(t *testing.T) {
	// Multiple goroutines per rank using separate dup'd communicators,
	// mirroring PapyrusKV's app thread + dispatcher + handler layout.
	runWorld(t, 4, func(c *Comm) error {
		handlerComm := c.Dup()
		var wg sync.WaitGroup
		wg.Add(1)
		stop := make(chan struct{})
		go func() { // message handler thread
			defer wg.Done()
			for {
				m, ok, err := handlerComm.TryRecv(AnySource, 1)
				if err != nil {
					return
				}
				if ok {
					if err := handlerComm.Send(m.Source, 2, m.Data); err != nil {
						return
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
		// App thread: request-response with every other rank's handler.
		for peer := 0; peer < c.Size(); peer++ {
			if peer == c.Rank() {
				continue
			}
			if err := handlerComm.Send(peer, 1, []byte{byte(c.Rank())}); err != nil {
				return err
			}
		}
		for i := 0; i < c.Size()-1; i++ {
			m, err := handlerComm.Recv(AnySource, 2)
			if err != nil {
				return err
			}
			if int(m.Data[0]) != c.Rank() {
				return fmt.Errorf("echo mismatch: %d", m.Data[0])
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		close(stop)
		wg.Wait()
		return nil
	})
}

func TestTopologyNodeOf(t *testing.T) {
	topo := Topology{RanksPerNode: 4}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Fatal("NodeOf mapping wrong")
	}
	flat := Topology{}
	if flat.NodeOf(99) != 0 {
		t.Fatal("flat topology must be single-node")
	}
}

func TestFabricCharged(t *testing.T) {
	net := simnet.New(simnet.NoDelay)
	shm := simnet.New(simnet.NoDelay)
	w := NewWorld(4, Topology{RanksPerNode: 2, Net: net, Shm: shm})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 100)); err != nil { // intra-node
				return err
			}
			if err := c.Send(2, 0, make([]byte, 100)); err != nil { // inter-node
				return err
			}
		}
		if c.Rank() == 1 || c.Rank() == 2 {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	netMsgs, _ := net.Stats()
	shmMsgs, _ := shm.Stats()
	if netMsgs != 1 {
		t.Fatalf("net messages = %d, want 1", netMsgs)
	}
	if shmMsgs != 1 {
		t.Fatalf("shm messages = %d, want 1", shmMsgs)
	}
}

func TestSelfSendFree(t *testing.T) {
	net := simnet.New(simnet.NoDelay)
	w := NewWorld(1, Topology{Net: net})
	err := w.Run(func(c *Comm) error {
		if err := c.Send(0, 0, []byte("self")); err != nil {
			return err
		}
		m, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(m.Data) != "self" {
			return fmt.Errorf("self message = %q", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs, _ := net.Stats(); msgs != 0 {
		t.Fatalf("self send charged the fabric: %d msgs", msgs)
	}
}

func TestPackUnpackSlices(t *testing.T) {
	in := [][]byte{[]byte("a"), nil, []byte("ccc"), {}}
	out, err := unpackSlices(packSlices(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if !bytes.Equal(out[i], in[i]) {
			t.Fatalf("slice %d: %v != %v", i, out[i], in[i])
		}
	}
	if _, err := unpackSlices([]byte{1, 2}); err == nil {
		t.Fatal("unpack of garbage succeeded")
	}
	if _, err := unpackSlices([]byte{1, 0, 0, 0, 5, 0, 0, 0, 1}); err == nil {
		t.Fatal("unpack of truncated body succeeded")
	}
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 64
	runWorld(t, n, func(c *Comm) error {
		// Ring exchange followed by allreduce, several rounds.
		for round := 0; round < 5; round++ {
			next := (c.Rank() + 1) % n
			prev := (c.Rank() + n - 1) % n
			if err := c.Send(next, round, []byte{byte(c.Rank())}); err != nil {
				return err
			}
			m, err := c.Recv(prev, round)
			if err != nil {
				return err
			}
			if int(m.Data[0]) != prev {
				return fmt.Errorf("ring round %d: got %d want %d", round, m.Data[0], prev)
			}
			sum, err := c.AllreduceInt64(1, OpSum)
			if err != nil {
				return err
			}
			if sum != n {
				return fmt.Errorf("allreduce = %d", sum)
			}
		}
		return nil
	})
}
