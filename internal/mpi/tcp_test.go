package mpi

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
)

// freePort reserves a localhost port for a coordinator.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// runTCPWorld joins `size` ranks over real TCP connections. Each rank gets
// its own World (separate state, exactly as separate processes would),
// so this exercises the full wire path.
func runTCPWorld(t *testing.T, size int, fn func(*Comm) error) {
	t.Helper()
	coord := freePort(t)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, closer, err := JoinTCP(coord, r, size, Topology{})
			if err != nil {
				errs[r] = fmt.Errorf("rank %d join: %w", r, err)
				return
			}
			defer closer.Close()
			if err := fn(c); err != nil {
				errs[r] = fmt.Errorf("rank %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("over the wire"))
		}
		m, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(m.Data) != "over the wire" || m.Source != 0 || m.Tag != 5 {
			return fmt.Errorf("got %+v", m)
		}
		return nil
	})
}

func TestTCPFIFOOrdering(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if m.Data[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %d", i, m.Data[0])
			}
		}
		return nil
	})
}

func TestTCPDisseminationBarrier(t *testing.T) {
	runTCPWorld(t, 5, func(c *Comm) error {
		// Repeated barriers must not deadlock or cross-match.
		for round := 0; round < 10; round++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	runTCPWorld(t, 4, func(c *Comm) error {
		sum, err := c.AllreduceInt64(int64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("allreduce = %d", sum)
		}
		out, err := c.Bcast(2, []byte(fmt.Sprintf("from-%d", c.Rank())))
		if err != nil {
			return err
		}
		if string(out) != "from-2" {
			return fmt.Errorf("bcast = %q", out)
		}
		all, err := c.Allgather([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for r, d := range all {
			if len(d) != 1 || d[0] != byte(r) {
				return fmt.Errorf("allgather[%d] = %v", r, d)
			}
		}
		return nil
	})
}

func TestTCPDupIsolationAndSplit(t *testing.T) {
	runTCPWorld(t, 4, func(c *Comm) error {
		priv := c.Dup()
		if c.Rank() == 0 {
			if err := c.Send(1, 9, []byte("app")); err != nil {
				return err
			}
			if err := priv.Send(1, 9, []byte("runtime")); err != nil {
				return err
			}
		}
		if c.Rank() == 1 {
			mp, err := priv.Recv(0, 9)
			if err != nil {
				return err
			}
			ma, err := c.Recv(0, 9)
			if err != nil {
				return err
			}
			if string(mp.Data) != "runtime" || string(ma.Data) != "app" {
				return fmt.Errorf("crossed: %q %q", mp.Data, ma.Data)
			}
		}
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 2 {
			return fmt.Errorf("split size = %d", sub.Size())
		}
		sum, err := sub.AllreduceInt64(1, OpSum)
		if err != nil {
			return err
		}
		if sum != 2 {
			return fmt.Errorf("split allreduce = %d", sum)
		}
		return sub.Barrier()
	})
}

func TestTCPLargeMessages(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		big := make([]byte, 4<<20)
		for i := range big {
			big[i] = byte(i * 31)
		}
		if c.Rank() == 0 {
			return c.Send(1, 0, big)
		}
		m, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if len(m.Data) != len(big) {
			return fmt.Errorf("len = %d", len(m.Data))
		}
		for i := 0; i < len(big); i += 65537 {
			if m.Data[i] != big[i] {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
}

func TestTCPRankValidation(t *testing.T) {
	if _, _, err := JoinTCP("127.0.0.1:1", 5, 4, Topology{}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, _, err := JoinTCP("127.0.0.1:1", -1, 4, Topology{}); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestTCPPeerFailureAborts(t *testing.T) {
	coord := freePort(t)
	var wg sync.WaitGroup
	results := make([]error, 2)
	closers := make([]io.Closer, 2)
	comms := make([]*Comm, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, closer, err := JoinTCP(coord, r, 2, Topology{})
			if err != nil {
				results[r] = err
				return
			}
			comms[r] = c
			closers[r] = closer
		}(r)
	}
	wg.Wait()
	for r, err := range results {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Rank 1 "crashes": its mesh closes, but rank 0's world must not be
	// left hanging — the dead connection aborts rank 0's blocked Recv.
	// (Closing the mesh marks rank 1's own world closed, which is the
	// clean path; killing the raw connections models the crash.)
	done := make(chan error, 1)
	go func() {
		_, err := comms[0].Recv(1, 0)
		done <- err
	}()
	closers[1].(*tcpMesh).conns[0].c.Close()
	if err := <-done; err == nil {
		t.Fatal("Recv survived peer connection loss")
	}
	closers[0].Close()
	closers[1].Close()
}
