// TCP transport: a World whose ranks live in different OS processes.
//
// The in-process World runs ranks as goroutines; JoinTCP instead joins this
// process, as a single rank, to a multi-process world connected by a TCP
// full mesh. The Comm it returns has identical semantics (tagged matched
// pt2pt, wildcards, collectives, Dup/Split), so PapyrusKV's runtime works
// unmodified across processes; ranks of one storage group then share NVM
// through the file system, exactly as ranks of one node would.
//
// Bootstrap: rank 0 listens on the coordinator address; every rank dials
// it and registers its own listener address; once all ranks are known, the
// coordinator broadcasts the address list; each pair of ranks establishes
// one connection (the higher rank dials the lower).
//
// Collectives run over point-to-point messages; the barrier uses the
// dissemination algorithm, so no shared memory is needed anywhere.
package mpi

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// JoinTCP joins this process to a size-rank world as rank. coordAddr is the
// address rank 0 listens on (e.g. "127.0.0.1:7777"); every rank passes the
// same value. It returns the world communicator and a closer that tears the
// mesh down. The transfer cost fabric, if any, applies on top of real
// network time.
func JoinTCP(coordAddr string, rank, size int, topo Topology) (*Comm, io.Closer, error) {
	if rank < 0 || rank >= size {
		return nil, nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, size)
	}
	w := NewWorld(size, topo)
	w.remote = &tcpMesh{world: w, rank: rank, size: size, conns: make([]*meshConn, size)}
	if err := w.remote.bootstrap(coordAddr); err != nil {
		return nil, nil, err
	}
	c := w.commWorld(rank)
	c.msgBarrier = true
	return c, w.remote, nil
}

// tcpMesh is the remote transport of a distributed world.
type tcpMesh struct {
	world *World
	rank  int
	size  int

	mu       sync.Mutex
	conns    []*meshConn
	listener net.Listener
	closed   bool
}

type meshConn struct {
	mu sync.Mutex // serialises frame writes
	c  net.Conn
	w  *bufio.Writer
}

// frame layout: u32 total length, then JSON header length (u32), JSON
// header {Comm, Src, Dst, Tag}, payload bytes.
type frameHeader struct {
	Comm string `json:"c"`
	Src  int    `json:"s"`
	Dst  int    `json:"d"`
	Tag  int    `json:"t"`
}

// send delivers a message addressed to communicator-local rank dstComm,
// which lives in the process hosting world rank dstWorld.
func (m *tcpMesh) send(commID string, src, dstComm, dstWorld, tag int, data []byte) error {
	m.mu.Lock()
	conn := m.conns[dstWorld]
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrAborted
	}
	if conn == nil {
		return fmt.Errorf("mpi: no connection to rank %d", dstWorld)
	}
	hdr, err := json.Marshal(frameHeader{Comm: commID, Src: src, Dst: dstComm, Tag: tag})
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(4+len(hdr)+len(data)))
	if _, err := conn.w.Write(u32[:]); err != nil {
		return fmt.Errorf("mpi: send to %d: %w", dstWorld, err)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdr)))
	if _, err := conn.w.Write(u32[:]); err != nil {
		return fmt.Errorf("mpi: send to %d: %w", dstWorld, err)
	}
	if _, err := conn.w.Write(hdr); err != nil {
		return fmt.Errorf("mpi: send to %d: %w", dstWorld, err)
	}
	if _, err := conn.w.Write(data); err != nil {
		return fmt.Errorf("mpi: send to %d: %w", dstWorld, err)
	}
	return conn.w.Flush()
}

// receiveLoop demultiplexes inbound frames into the local rank's mailboxes.
func (m *tcpMesh) receiveLoop(conn net.Conn) {
	r := bufio.NewReader(conn)
	for {
		var u32 [4]byte
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			m.abortOnIOError(err)
			return
		}
		total := binary.LittleEndian.Uint32(u32[:])
		if total < 4 || total > 1<<30 {
			m.abortOnIOError(fmt.Errorf("mpi: bad frame length %d", total))
			return
		}
		buf := make([]byte, total)
		if _, err := io.ReadFull(r, buf); err != nil {
			m.abortOnIOError(err)
			return
		}
		hlen := binary.LittleEndian.Uint32(buf)
		if 4+hlen > total {
			m.abortOnIOError(fmt.Errorf("mpi: bad frame header length %d", hlen))
			return
		}
		var hdr frameHeader
		if err := json.Unmarshal(buf[4:4+hlen], &hdr); err != nil {
			m.abortOnIOError(err)
			return
		}
		if hdr.Comm == byeComm {
			// Graceful peer shutdown: stop this loop without aborting.
			return
		}
		payload := buf[4+hlen:]
		msg := Message{Source: hdr.Src, Tag: hdr.Tag, Data: payload}
		// hdr.Dst is the communicator-local rank of this process's one
		// world rank, so the mailbox key is unambiguous here.
		if err := m.world.box(hdr.Comm, hdr.Dst).deliver(msg); err != nil {
			return
		}
	}
}

func (m *tcpMesh) abortOnIOError(err error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return // normal teardown
	}
	m.world.Abort(fmt.Errorf("mpi: peer connection failed: %w", err))
}

// byeComm is the control pseudo-communicator announcing a graceful
// shutdown; a peer that disappears without it crashed, and crashes abort
// the world.
const byeComm = "!bye"

// Close tears down the mesh gracefully: each peer is told goodbye first so
// its receive loop stops without aborting its world. A rank may close while
// peers are still exchanging messages among themselves (barrier completion
// is staggered); once a rank has completed its final collective, no further
// traffic targets it, so closing is safe.
func (m *tcpMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	conns := append([]*meshConn(nil), m.conns...)
	m.mu.Unlock()
	for i, c := range conns {
		if c != nil && i != m.rank {
			// Best effort: the peer may already be gone.
			_ = m.send(byeComm, m.rank, 0, i, 0, nil)
		}
	}
	m.mu.Lock()
	m.closed = true
	l := m.listener
	m.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for i, c := range conns {
		if c != nil && i != m.rank {
			c.c.Close()
		}
	}
	return nil
}

// registration is the bootstrap record each rank sends the coordinator.
type registration struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
}

// bootstrap wires the full mesh via the coordinator at coordAddr.
func (m *tcpMesh) bootstrap(coordAddr string) error {
	// Every rank, including 0, runs its own peer listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mpi: peer listener: %w", err)
	}
	m.listener = l

	addrs := make([]string, m.size)
	addrs[m.rank] = l.Addr().String()

	if m.rank == 0 {
		if err := m.coordinate(coordAddr, addrs); err != nil {
			l.Close()
			return err
		}
	} else {
		if err := m.register(coordAddr, addrs); err != nil {
			l.Close()
			return err
		}
	}

	// Mesh: accept connections from higher ranks, dial lower ranks. The
	// dialer announces its rank in a one-line preamble.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { // accept side
		defer wg.Done()
		for i := m.rank + 1; i < m.size; i++ {
			conn, err := l.Accept()
			if err != nil {
				errs[0] = err
				return
			}
			var peer int32
			if err := binary.Read(conn, binary.LittleEndian, &peer); err != nil {
				errs[0] = err
				return
			}
			m.adopt(int(peer), conn)
		}
	}()
	wg.Add(1)
	go func() { // dial side
		defer wg.Done()
		for i := 0; i < m.rank; i++ {
			conn, err := dialRetry(addrs[i])
			if err != nil {
				errs[1] = err
				return
			}
			if err := binary.Write(conn, binary.LittleEndian, int32(m.rank)); err != nil {
				errs[1] = err
				return
			}
			m.adopt(i, conn)
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			m.Close()
			return fmt.Errorf("mpi: mesh bootstrap: %w", err)
		}
	}
	return nil
}

func (m *tcpMesh) adopt(peer int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	m.mu.Lock()
	m.conns[peer] = &meshConn{c: conn, w: bufio.NewWriter(conn)}
	m.mu.Unlock()
	go m.receiveLoop(conn)
}

// coordinate is rank 0's side of the bootstrap: collect every rank's peer
// address, then send the full list to everyone.
func (m *tcpMesh) coordinate(coordAddr string, addrs []string) error {
	cl, err := net.Listen("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("mpi: coordinator listen: %w", err)
	}
	defer cl.Close()
	conns := make([]net.Conn, 0, m.size-1)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 1; i < m.size; i++ {
		conn, err := cl.Accept()
		if err != nil {
			return fmt.Errorf("mpi: coordinator accept: %w", err)
		}
		conns = append(conns, conn)
		var reg registration
		if err := json.NewDecoder(conn).Decode(&reg); err != nil {
			return fmt.Errorf("mpi: coordinator decode: %w", err)
		}
		if reg.Rank < 1 || reg.Rank >= m.size || addrs[reg.Rank] != "" {
			return fmt.Errorf("mpi: duplicate or invalid registration for rank %d", reg.Rank)
		}
		addrs[reg.Rank] = reg.Addr
	}
	for _, conn := range conns {
		if err := json.NewEncoder(conn).Encode(addrs); err != nil {
			return fmt.Errorf("mpi: coordinator broadcast: %w", err)
		}
	}
	return nil
}

// register is every other rank's side of the bootstrap.
func (m *tcpMesh) register(coordAddr string, addrs []string) error {
	conn, err := dialRetry(coordAddr)
	if err != nil {
		return fmt.Errorf("mpi: dial coordinator: %w", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(registration{Rank: m.rank, Addr: addrs[m.rank]}); err != nil {
		return err
	}
	var all []string
	if err := json.NewDecoder(conn).Decode(&all); err != nil {
		return fmt.Errorf("mpi: address list: %w", err)
	}
	if len(all) != m.size {
		return fmt.Errorf("mpi: address list has %d entries, want %d", len(all), m.size)
	}
	copy(addrs, all)
	return nil
}

// dialTotalTimeout bounds the whole dialRetry loop. Peers come up in
// arbitrary order during bootstrap, so transient refusals are expected; a
// peer silent past this deadline is treated as absent.
var dialTotalTimeout = 10 * time.Second

// dialRetry dials addr with exponentially backed-off, jittered retries until
// dialTotalTimeout expires; peers come up in arbitrary order.
func dialRetry(addr string) (net.Conn, error) {
	return dialRetryTimeout(addr, dialTotalTimeout)
}

func dialRetryTimeout(addr string, total time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(total)
	backoff := 5 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for attempt := 1; ; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mpi: dial %s: gave up after %d attempts over %v: %w",
				addr, attempt, total, err)
		}
		// Full jitter spreads dialers that all woke on the same listener.
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}
