package papyruskv

import (
	"os"
	"strconv"

	"papyruskv/internal/sstable"
)

// Environment variables understood by ApplyEnv, mirroring the paper
// artifact's runtime toggles. The numeric encodings match the artifact's
// job scripts (e.g. PAPYRUSKV_CONSISTENCY=1 is sequential, 2 is relaxed;
// PAPYRUSKV_BIN_SEARCH=2 enables binary search).
const (
	EnvRepository        = "PAPYRUSKV_REPOSITORY"
	EnvGroupSize         = "PAPYRUSKV_GROUP_SIZE"
	EnvConsistency       = "PAPYRUSKV_CONSISTENCY"
	EnvBinSearch         = "PAPYRUSKV_BIN_SEARCH"
	EnvCacheRemote       = "PAPYRUSKV_CACHE_REMOTE"
	EnvForceRedistribute = "PAPYRUSKV_FORCE_REDISTRIBUTE"
)

// ApplyEnv overlays the artifact's PAPYRUSKV_* environment variables onto
// opt, returning the result. Unset or malformed variables leave the
// corresponding field untouched.
func ApplyEnv(opt Options) Options {
	if v, ok := envInt(EnvConsistency); ok {
		switch v {
		case 1:
			opt.Consistency = Sequential
		case 2:
			opt.Consistency = Relaxed
		}
	}
	if v, ok := envInt(EnvBinSearch); ok {
		if v >= 2 {
			opt.SearchMode = sstable.BinarySearch
		} else {
			opt.SearchMode = sstable.SequentialSearch
		}
	}
	if v, ok := envInt(EnvCacheRemote); ok && v >= 1 {
		if opt.RemoteCacheCapacity == 0 {
			opt.RemoteCacheCapacity = 64 << 20
		}
		opt.Protection = RDONLY // the artifact's remote-cache toggle
	}
	return opt
}

// EnvGroupSizeValue returns PAPYRUSKV_GROUP_SIZE if set.
func EnvGroupSizeValue() (int, bool) { return envInt(EnvGroupSize) }

// EnvRepositoryValue returns PAPYRUSKV_REPOSITORY if set.
func EnvRepositoryValue() (string, bool) {
	v := os.Getenv(EnvRepository)
	return v, v != ""
}

// EnvForceRedistributeValue returns PAPYRUSKV_FORCE_REDISTRIBUTE as a bool.
func EnvForceRedistributeValue() bool {
	v, ok := envInt(EnvForceRedistribute)
	return ok && v >= 1
}

// SearchModeBinary and SearchModeSequential expose the SSTable search modes
// for Options.SearchMode without importing internal packages.
var (
	SearchModeBinary     = sstable.BinarySearch
	SearchModeSequential = sstable.SequentialSearch
)

func envInt(name string) (int, bool) {
	v := os.Getenv(name)
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}
