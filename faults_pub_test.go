package papyruskv_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"papyruskv"
)

// TestFaultInjectionPublicAPI arms the injector through ClusterConfig.Faults
// and checks the full public path: a dropped migration batch is retried and
// applied, and the firing is recorded for seeded reproduction.
func TestFaultInjectionPublicAPI(t *testing.T) {
	inj := papyruskv.NewFaultInjector(99).
		Enable(papyruskv.FaultRule{
			Point: papyruskv.FaultNetDrop, Rank: 1, Tag: 1 /* migration batch */, Count: 1, Fires: 1,
		})
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: 2, Dir: t.TempDir(), Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.RetryTimeout = 200 * time.Millisecond
		db, err := ctx.Open("pubfaults", &opt)
		if err != nil {
			return err
		}
		if err := db.Health(); err != nil {
			return fmt.Errorf("fresh db unhealthy: %w", err)
		}
		if ctx.Rank() == 1 {
			for i := 0; i < 10; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
					return err
				}
			}
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return fmt.Errorf("barrier across the dropped batch: %w", err)
		}
		for i := 0; i < 10; i++ {
			if _, err := db.Get([]byte(fmt.Sprintf("k%02d", i))); err != nil {
				return fmt.Errorf("pair lost to the dropped batch: %w", err)
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fired(papyruskv.FaultNetDrop) != 1 {
		t.Fatalf("NetDrop fired %d times, want 1; log: %v", inj.Fired(papyruskv.FaultNetDrop), inj.Log())
	}
	if papyruskv.ErrCorrupt == nil || papyruskv.ErrRankFailed == nil ||
		!errors.Is(papyruskv.ErrNoSpace, papyruskv.ErrInjected) {
		t.Fatal("error sentinels not exported coherently")
	}
}
