// Package papyruskv is a Go implementation of PapyrusKV, the parallel
// embedded key-value store for distributed NVM architectures of Kim, Lee &
// Vetter (SC'17, DOI 10.1145/3126908.3126943).
//
// PapyrusKV stores keys with their values in arbitrary byte arrays across
// the NVM devices of a distributed system. It is embedded in SPMD-style
// programs: every rank runs the same code, and the store is partitioned
// across ranks by a (customisable) key hash. On top of the standard put /
// get / delete operations it provides the paper's HPC-oriented features:
// dynamic consistency control (relaxed vs sequential), protection
// attributes that drive its caches, storage groups that let ranks sharing
// an NVM device read each other's SSTables directly, zero-copy workflows
// across application runs, and asynchronous checkpoint/restart — including
// restart with redistribution onto a different rank count.
//
// Because Go has no MPI bindings, the SPMD substrate is provided by this
// package too: a Cluster runs N ranks as goroutines connected by an
// MPI-semantics message layer, with NVM devices and the interconnect
// governed by calibrated performance models of the paper's three evaluation
// systems (OLCF Summitdev, TACC Stampede, NERSC Cori). Set TimeScale to 0
// to disable all performance modelling and run at native speed.
//
// A minimal SPMD program:
//
//	cluster, _ := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 4, Dir: dir})
//	err := cluster.Run(func(ctx *papyruskv.Context) error {
//		db, err := ctx.Open("mydb", nil)
//		if err != nil {
//			return err
//		}
//		if err := db.Put([]byte("key"), []byte("value")); err != nil {
//			return err
//		}
//		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
//			return err
//		}
//		val, err := db.Get([]byte("key"))
//		_ = val
//		return db.Close()
//	})
package papyruskv

import (
	"papyruskv/internal/core"
	"papyruskv/internal/hashfn"
	"papyruskv/internal/scrub"
)

// Re-exported core types. The paper's papyruskv_option_t, consistency
// modes, protection attributes, barrier levels, events, and error codes all
// surface here so applications never import internal packages.
type (
	// Options configures a database at open time (papyruskv_option_t).
	Options = core.Options
	// Consistency selects relaxed or sequential mode (§3.1).
	Consistency = core.Consistency
	// Protection is RDWR, WRONLY, or RDONLY (§3.2).
	Protection = core.Protection
	// BarrierLevel is the papyruskv_barrier flushing level.
	BarrierLevel = core.BarrierLevel
	// DB is an open database handle; Open is collective and every rank
	// holds an identical descriptor.
	DB = core.DB
	// Event identifies an asynchronous checkpoint/restart/destroy
	// operation (papyruskv_event_t); Wait blocks for completion.
	Event = core.Event
	// Metrics exposes per-rank data-path counters.
	Metrics = core.Metrics
	// Iterator is a snapshot-pinned ordered iterator over one rank's
	// local view; DB.NewIterator opens one, and DB.Scan merges them
	// across every rank of the world.
	Iterator = core.Iterator
	// HashFunc maps a key to its owner rank; install a custom one via
	// Options.Hash for application-specific load balancing.
	HashFunc = hashfn.Func
	// WALMode selects the write-ahead-log durability discipline via
	// Options.WAL: WALAsync (group commit, the default), WALSync (fsync
	// before every acknowledgement), or WALDisabled.
	WALMode = core.WALMode
	// HealthState is a rank's position on the degradation ladder reported
	// by DB.State: Healthy → Degraded (read-only) → Failed.
	HealthState = core.HealthState
	// ScrubReport is the cumulative outcome of a rank's background
	// integrity scrub (DB.ScrubReport): verification counters plus the key
	// range of every table quarantined without a repair source.
	ScrubReport = scrub.Report
	// ScrubLostRange is one quarantined, unrepairable table's key coverage
	// inside a ScrubReport.
	ScrubLostRange = scrub.LostRange
)

// Degradation-ladder states (DB.State). A Healthy rank serves reads and
// writes; a Degraded rank — out of NVM space, or over its parked-batch
// budget — serves reads but refuses writes with ErrReadOnly until resources
// are reclaimed (DB.Reclaim, or the background reclaim probe); a Failed
// rank refuses everything with ErrRankFailed until DB.Recover heals it.
const (
	StateHealthy  = core.StateHealthy
	StateDegraded = core.StateDegraded
	StateFailed   = core.StateFailed
)

// Consistency modes (PAPYRUSKV_RELAXED, PAPYRUSKV_SEQUENTIAL).
const (
	Relaxed    = core.Relaxed
	Sequential = core.Sequential
)

// Protection attributes (PAPYRUSKV_RDWR, PAPYRUSKV_WRONLY, PAPYRUSKV_RDONLY).
const (
	RDWR   = core.RDWR
	WRONLY = core.WRONLY
	RDONLY = core.RDONLY
)

// Barrier levels (PAPYRUSKV_MEMTABLE, PAPYRUSKV_SSTABLE).
const (
	MemTableLevel = core.LevelMemTable
	SSTableLevel  = core.LevelSSTable
)

// Write-ahead-log durability modes (Options.WAL). WALAsync is the zero
// value: a kill loses at most the last group-commit window of acknowledged
// puts. WALSync loses none. WALDisabled restores the original artifact's
// behaviour, where durability begins only at SSTable flush.
const (
	WALAsync    = core.WALAsync
	WALSync     = core.WALSync
	WALDisabled = core.WALDisabled
)

// Error codes (PAPYRUSKV_NOT_FOUND, PAPYRUSKV_INVALID_DB, ...).
var (
	ErrNotFound        = core.ErrNotFound
	ErrInvalidDB       = core.ErrInvalidDB
	ErrProtected       = core.ErrProtected
	ErrInvalidArgument = core.ErrInvalidArgument
	ErrNoSnapshot      = core.ErrNoSnapshot
	// ErrReadOnly is returned for writes — local puts, and remote puts or
	// migrations refused by their owner across the wire — while a rank is
	// Degraded (read-only). Reads keep working; Reclaim or freed space
	// lifts the state.
	ErrReadOnly = core.ErrReadOnly
	// ErrWriteStalled is returned when a put, after stalling up to
	// Options.StallTimeout on a full immutable-table backlog, still finds
	// the backlog above the soft threshold — or immediately once the
	// backlog reaches Options.StallHardDepth. The put was not applied.
	ErrWriteStalled = core.ErrWriteStalled
	// ErrScrubLoss is the cause inside Health()'s ErrReadOnly after the
	// background scrubber found a corrupt SSTable with no valid checkpoint
	// copy to repair from: the table is quarantined, its key range is in
	// DB.ScrubReport, and the rank is Degraded (read-only).
	ErrScrubLoss = core.ErrScrubLoss
)

// DefaultOptions returns the paper's default database configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultHash is the built-in owner-rank hash function.
func DefaultHash(key []byte, nranks int) int { return hashfn.Default(key, nranks) }
