package papyruskv_test

// Godoc example functions: runnable documentation for the public API.

import (
	"errors"
	"fmt"
	"log"
	"os"

	"papyruskv"
)

// Example shows the minimal SPMD program: open, put, barrier, get.
func Example() {
	dir, _ := os.MkdirTemp("", "pkv-example-")
	defer os.RemoveAll(dir)

	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("example", nil)
		if err != nil {
			return err
		}
		key := fmt.Sprintf("rank-%d", ctx.Rank())
		if err := db.Put([]byte(key), []byte("hello")); err != nil {
			return err
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			v, err := db.Get([]byte("rank-1"))
			if err != nil {
				return err
			}
			fmt.Printf("rank 0 read rank 1's value: %s\n", v)
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: rank 0 read rank 1's value: hello
}

// ExampleDB_SetConsistency demonstrates dynamic consistency control:
// switching a database to sequential mode makes every remote put
// synchronous, so signals alone order cross-rank visibility.
func ExampleDB_SetConsistency() {
	dir, _ := os.MkdirTemp("", "pkv-example-")
	defer os.RemoveAll(dir)

	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return 1 % n } // rank 1 owns all
		db, err := ctx.Open("seq", &opt)
		if err != nil {
			return err
		}
		if err := db.SetConsistency(papyruskv.Sequential); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			// Synchronous: applied at the owner before Put returns.
			if err := db.Put([]byte("job"), []byte("done")); err != nil {
				return err
			}
			if err := ctx.SignalNotify(1, []int{1}); err != nil {
				return err
			}
		} else {
			if err := ctx.SignalWait(1, []int{0}); err != nil {
				return err
			}
			v, err := db.Get([]byte("job"))
			if err != nil {
				return err
			}
			fmt.Printf("rank 1 sees: %s\n", v)
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: rank 1 sees: done
}

// ExampleDB_Checkpoint demonstrates the asynchronous checkpoint/restart
// cycle across a simulated job boundary.
func ExampleDB_Checkpoint() {
	dir, _ := os.MkdirTemp("", "pkv-example-")
	defer os.RemoveAll(dir)

	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("state", nil)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("r%d", ctx.Rank())), []byte("saved")); err != nil {
			return err
		}
		ev, err := db.Checkpoint("snapshots/step-1")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil { // papyruskv_wait
			return err
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Trim(); err != nil { // job ends; NVM scratch wiped
		log.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, ev, err := ctx.Restart("snapshots/step-1", "state", nil, false)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			v, err := db.Get([]byte("r1"))
			if err != nil {
				return err
			}
			fmt.Printf("restored: %s\n", v)
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: restored: saved
}

// ExampleDB_SetProtection demonstrates a read-only phase: writes are
// rejected and the remote cache accelerates repeated remote reads.
func ExampleDB_SetProtection() {
	dir, _ := os.MkdirTemp("", "pkv-example-")
	defer os.RemoveAll(dir)

	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("phases", nil)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("r%d", ctx.Rank())), []byte("v")); err != nil {
			return err
		}
		if err := db.SetProtection(papyruskv.RDONLY); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			err := db.Put([]byte("nope"), []byte("x"))
			fmt.Printf("write while RDONLY rejected: %v\n", errors.Is(err, papyruskv.ErrProtected))
		}
		if err := db.SetProtection(papyruskv.RDWR); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: write while RDONLY rejected: true
}
