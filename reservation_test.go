package papyruskv_test

import (
	"errors"
	"fmt"
	"testing"

	"papyruskv"
)

// TestPersistentReservationZeroCopyAcrossJobs covers §4.1's second
// scenario: on a dedicated NVM architecture with a persistent reservation,
// the database survives the end-of-job trim and a later job reopens it
// with zero data movement — no checkpoint required.
func TestPersistentReservationZeroCopyAcrossJobs(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks:                 4,
		Dir:                   t.TempDir(),
		System:                "cori", // dedicated NVM architecture
		PersistentReservation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 writes.
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("reserved", nil)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("k%d", ctx.Rank())), []byte("kept")); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job boundary: with the reservation, the burst-buffer space stays.
	if err := cluster.Trim(); err != nil {
		t.Fatal(err)
	}
	// Job 2 reads zero-copy.
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("reserved", nil)
		if err != nil {
			return err
		}
		for r := 0; r < ctx.Size(); r++ {
			v, err := db.Get([]byte(fmt.Sprintf("k%d", r)))
			if err != nil || string(v) != "kept" {
				return fmt.Errorf("reserved data lost: %q %v", v, err)
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Without a reservation the same sequence loses the data — the default
// scratch policy of §4.
func TestNoReservationTrimsData(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks:  2,
		Dir:    t.TempDir(),
		System: "cori",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("scratch", nil)
		if err != nil {
			return err
		}
		db.Put([]byte(fmt.Sprintf("k%d", ctx.Rank())), []byte("v"))
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Trim(); err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("scratch", nil)
		if err != nil {
			return err
		}
		if _, err := db.Get([]byte("k0")); !errors.Is(err, papyruskv.ErrNotFound) {
			return fmt.Errorf("unreserved data survived the trim: %v", err)
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
